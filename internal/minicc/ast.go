package minicc

import "repro/internal/ir"

// TypeName is a MiniC surface type.
type TypeName uint8

// MiniC types. TVoid is only valid as a function return type.
const (
	TVoid TypeName = iota
	TInt
	TFloat
	TBool
)

// String returns the MiniC spelling of t.
func (t TypeName) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	default:
		return "?"
	}
}

// IRType maps a MiniC type to its IR representation.
func (t TypeName) IRType() ir.Type {
	switch t {
	case TInt:
		return ir.I64
	case TFloat:
		return ir.F64
	case TBool:
		return ir.I1
	default:
		return ir.Void
	}
}

// File is a parsed MiniC source file.
type File struct {
	Name    string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a module global: a scalar, a fixed-size array, or a
// dynamically sized input-bound array (declared with empty brackets).
type GlobalDecl struct {
	Pos     Pos
	Name    string
	Elem    TypeName
	IsArray bool
	Size    int64 // fixed element count; meaningful only when IsArray && !Dynamic
	Dynamic bool  // "var x[] int;" — bound by the program input
}

// Param is one function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type TypeName
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    TypeName // TVoid for procedures
	Body   *BlockStmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtPos() Pos }

// BlockStmt is a braced statement list introducing a scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDeclStmt declares a local scalar or fixed-size local array.
type VarDeclStmt struct {
	Pos     Pos
	Name    string
	Elem    TypeName
	IsArray bool
	Size    int64
	Init    Expr // optional initializer for scalars
}

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt (else-if), or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop. Init and Post are optional simple
// statements (assignment or var declaration for Init).
type ForStmt struct {
	Pos  Pos
	Init Stmt // nil, *VarDeclStmt, or *AssignStmt
	Cond Expr // nil means "true"
	Post Stmt // nil or *AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void returns
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's continuation point.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// SpawnStmt launches a function on a new simulated thread.
type SpawnStmt struct {
	Pos  Pos
	Call *CallExpr
}

// SyncStmt waits for all spawned threads.
type SyncStmt struct{ Pos Pos }

func (s *BlockStmt) stmtPos() Pos    { return s.Pos }
func (s *VarDeclStmt) stmtPos() Pos  { return s.Pos }
func (s *AssignStmt) stmtPos() Pos   { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *BreakStmt) stmtPos() Pos    { return s.Pos }
func (s *ContinueStmt) stmtPos() Pos { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *SpawnStmt) stmtPos() Pos    { return s.Pos }
func (s *SyncStmt) stmtPos() Pos     { return s.Pos }

// Expr is implemented by all expression nodes. The semantic analyzer
// records each node's type via SetType; codegen reads it via TypeOf.
type Expr interface {
	exprPos() Pos
	TypeOf() TypeName
	setType(TypeName)
}

// exprType embeds type annotation storage into expression nodes.
type exprType struct{ t TypeName }

// TypeOf returns the type recorded by semantic analysis.
func (e *exprType) TypeOf() TypeName   { return e.t }
func (e *exprType) setType(t TypeName) { e.t = t }

// BinOp enumerates MiniC binary operators.
type BinOp uint8

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd // bitwise &
	BinOr  // bitwise |
	BinXor
	BinShl
	BinShr
	BinLAnd // logical && (short-circuit)
	BinLOr  // logical || (short-circuit)
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

// IntLit is an integer literal.
type IntLit struct {
	exprType
	Pos Pos
	V   int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprType
	Pos Pos
	V   float64
}

// BoolLit is true/false.
type BoolLit struct {
	exprType
	Pos Pos
	V   bool
}

// Ident references a scalar variable.
type Ident struct {
	exprType
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	exprType
	Pos   Pos
	Name  string
	Index Expr
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	exprType
	Pos  Pos
	Op   BinOp
	X, Y Expr
}

// UnaryExpr applies unary minus or logical not.
type UnaryExpr struct {
	exprType
	Pos Pos
	Neg bool // true: -x, false: !x
	X   Expr
}

// CallExpr calls a user function or a builtin.
type CallExpr struct {
	exprType
	Pos  Pos
	Name string
	Args []Expr
}

// CastExpr converts between int and float: int(e) / float(e).
type CastExpr struct {
	exprType
	Pos Pos
	To  TypeName
	X   Expr
}

// LenExpr is len(arr): the element count of an array.
type LenExpr struct {
	exprType
	Pos  Pos
	Name string
}

func (e *IntLit) exprPos() Pos     { return e.Pos }
func (e *FloatLit) exprPos() Pos   { return e.Pos }
func (e *BoolLit) exprPos() Pos    { return e.Pos }
func (e *Ident) exprPos() Pos      { return e.Pos }
func (e *IndexExpr) exprPos() Pos  { return e.Pos }
func (e *BinaryExpr) exprPos() Pos { return e.Pos }
func (e *UnaryExpr) exprPos() Pos  { return e.Pos }
func (e *CallExpr) exprPos() Pos   { return e.Pos }
func (e *CastExpr) exprPos() Pos   { return e.Pos }
func (e *LenExpr) exprPos() Pos    { return e.Pos }
