package minicc

import (
	"fmt"

	"repro/internal/ir"
)

// Compile parses, checks, and lowers MiniC source to a finalized, verified
// IR module.
func Compile(name, src string) (*ir.Module, error) {
	f, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	chk, err := Check(f)
	if err != nil {
		return nil, err
	}
	m, err := gen(chk)
	if err != nil {
		return nil, err
	}
	m.Finalize()
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("minicc: generated invalid IR for %s: %w", name, err)
	}
	return m, nil
}

// MustCompile is Compile for known-good embedded sources; it panics on error.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// generator lowers one checked file to IR.
type generator struct {
	chk *checked
	mod *ir.Module

	b     *ir.Builder
	fn    *FuncDecl
	slots map[*symbol]ir.Operand // alloca pointer per local symbol

	// Loop context stacks for break/continue.
	breakBlocks    []*ir.Block
	continueBlocks []*ir.Block
}

func gen(chk *checked) (*ir.Module, error) {
	g := &generator{chk: chk, mod: ir.NewModule(chk.file.Name)}

	for _, gd := range chk.file.Globals {
		size := 1
		if gd.IsArray {
			if gd.Dynamic {
				size = -1
			} else {
				size = int(gd.Size)
			}
		}
		g.mod.AddGlobal(gd.Name, size, nil)
	}

	// Pre-declare all functions so calls can reference indices.
	for _, fd := range chk.file.Funcs {
		params := make([]ir.Type, len(fd.Params))
		for i, p := range fd.Params {
			params[i] = p.Type.IRType()
		}
		g.mod.AddFunction(fd.Name, params, fd.Ret.IRType())
	}

	for i, fd := range chk.file.Funcs {
		if err := g.genFunc(g.mod.Funcs[i], fd); err != nil {
			return nil, err
		}
	}
	return g.mod, nil
}

func (g *generator) genFunc(irf *ir.Function, fd *FuncDecl) error {
	g.fn = fd
	g.b = ir.NewBuilder(g.mod, irf)
	g.slots = make(map[*symbol]ir.Operand)
	g.breakBlocks = nil
	g.continueBlocks = nil

	// Allocate stack slots for every local (params included) up front, as a
	// C compiler at -O0 would, then spill the incoming parameters.
	for _, sym := range g.chk.locals[fd] {
		count := int64(1)
		if sym.IsArray {
			count = sym.Size
		}
		g.slots[sym] = g.b.Alloca(ir.ConstI(count))
	}
	for _, sym := range g.chk.locals[fd] {
		if sym.ParamIdx >= 0 {
			g.b.Store(ir.Reg(sym.ParamIdx, sym.Elem.IRType()), g.slots[sym])
		}
	}

	if err := g.genBlock(fd.Body); err != nil {
		return err
	}

	// Terminate any open block (fall-off-the-end and dead merge blocks)
	// with a default return.
	for _, blk := range irf.Blocks {
		if blk.Terminator() == nil {
			g.b.SetBlock(blk)
			switch fd.Ret {
			case TVoid:
				g.b.RetVoid()
			case TFloat:
				g.b.Ret(ir.ConstF(0))
			case TBool:
				g.b.Ret(ir.ConstB(false))
			default:
				g.b.Ret(ir.ConstI(0))
			}
		}
	}
	return nil
}

func (g *generator) genBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if g.b.Terminated() {
			// Unreachable code after return/break/continue; skip it.
			return nil
		}
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return g.genBlock(st)
	case *VarDeclStmt:
		if st.Init != nil {
			v, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			g.b.Store(v, g.slots[g.chk.decl[st]])
		}
		return nil
	case *AssignStmt:
		return g.genAssign(st)
	case *IfStmt:
		return g.genIf(st)
	case *WhileStmt:
		return g.genWhile(st)
	case *ForStmt:
		return g.genFor(st)
	case *ReturnStmt:
		if st.Value == nil {
			g.b.RetVoid()
			return nil
		}
		v, err := g.genExpr(st.Value)
		if err != nil {
			return err
		}
		g.b.Ret(v)
		return nil
	case *BreakStmt:
		g.b.Br(g.breakBlocks[len(g.breakBlocks)-1])
		return nil
	case *ContinueStmt:
		g.b.Br(g.continueBlocks[len(g.continueBlocks)-1])
		return nil
	case *ExprStmt:
		_, err := g.genExpr(st.X)
		return err
	case *SpawnStmt:
		args := make([]ir.Operand, len(st.Call.Args))
		for i, a := range st.Call.Args {
			v, err := g.genExpr(a)
			if err != nil {
				return err
			}
			args[i] = v
		}
		g.b.Spawn(g.chk.fidx[st.Call.Name], args...)
		return nil
	case *SyncStmt:
		g.b.Join()
		return nil
	default:
		return fmt.Errorf("minicc: unhandled statement at %s", s.stmtPos())
	}
}

// addr computes the address operand for a scalar symbol or an indexed
// array element.
func (g *generator) addr(sym *symbol, index Expr) (ir.Operand, error) {
	var base ir.Operand
	if sym.Global {
		base = g.b.GlobalAddr(sym.GIndex)
	} else {
		base = g.slots[sym]
	}
	if index == nil {
		return base, nil
	}
	idx, err := g.genExpr(index)
	if err != nil {
		return ir.Operand{}, err
	}
	return g.b.GEP(base, idx), nil
}

func (g *generator) genAssign(st *AssignStmt) error {
	sym := g.chk.assign[st]
	ptr, err := g.addr(sym, st.Index)
	if err != nil {
		return err
	}
	v, err := g.genExpr(st.Value)
	if err != nil {
		return err
	}
	g.b.Store(v, ptr)
	return nil
}

func (g *generator) genIf(st *IfStmt) error {
	cond, err := g.genExpr(st.Cond)
	if err != nil {
		return err
	}
	thenB := g.b.NewBlock("if.then")
	mergeB := g.b.NewBlock("if.end")
	elseB := mergeB
	if st.Else != nil {
		elseB = g.b.NewBlock("if.else")
	}
	g.b.CondBr(cond, thenB, elseB)

	g.b.SetBlock(thenB)
	if err := g.genBlock(st.Then); err != nil {
		return err
	}
	if !g.b.Terminated() {
		g.b.Br(mergeB)
	}

	if st.Else != nil {
		g.b.SetBlock(elseB)
		if err := g.genStmt(st.Else); err != nil {
			return err
		}
		if !g.b.Terminated() {
			g.b.Br(mergeB)
		}
	}
	g.b.SetBlock(mergeB)
	return nil
}

func (g *generator) genWhile(st *WhileStmt) error {
	condB := g.b.NewBlock("while.cond")
	bodyB := g.b.NewBlock("while.body")
	exitB := g.b.NewBlock("while.end")
	g.b.Br(condB)

	g.b.SetBlock(condB)
	cond, err := g.genExpr(st.Cond)
	if err != nil {
		return err
	}
	g.b.CondBr(cond, bodyB, exitB)

	g.b.SetBlock(bodyB)
	g.breakBlocks = append(g.breakBlocks, exitB)
	g.continueBlocks = append(g.continueBlocks, condB)
	err = g.genBlock(st.Body)
	g.breakBlocks = g.breakBlocks[:len(g.breakBlocks)-1]
	g.continueBlocks = g.continueBlocks[:len(g.continueBlocks)-1]
	if err != nil {
		return err
	}
	if !g.b.Terminated() {
		g.b.Br(condB)
	}
	g.b.SetBlock(exitB)
	return nil
}

func (g *generator) genFor(st *ForStmt) error {
	if st.Init != nil {
		if err := g.genStmt(st.Init); err != nil {
			return err
		}
	}
	condB := g.b.NewBlock("for.cond")
	bodyB := g.b.NewBlock("for.body")
	postB := g.b.NewBlock("for.post")
	exitB := g.b.NewBlock("for.end")
	g.b.Br(condB)

	g.b.SetBlock(condB)
	if st.Cond != nil {
		cond, err := g.genExpr(st.Cond)
		if err != nil {
			return err
		}
		g.b.CondBr(cond, bodyB, exitB)
	} else {
		g.b.Br(bodyB)
	}

	g.b.SetBlock(bodyB)
	g.breakBlocks = append(g.breakBlocks, exitB)
	g.continueBlocks = append(g.continueBlocks, postB)
	err := g.genBlock(st.Body)
	g.breakBlocks = g.breakBlocks[:len(g.breakBlocks)-1]
	g.continueBlocks = g.continueBlocks[:len(g.continueBlocks)-1]
	if err != nil {
		return err
	}
	if !g.b.Terminated() {
		g.b.Br(postB)
	}

	g.b.SetBlock(postB)
	if st.Post != nil {
		if err := g.genStmt(st.Post); err != nil {
			return err
		}
	}
	g.b.Br(condB)

	g.b.SetBlock(exitB)
	return nil
}

var intBinOps = map[BinOp]ir.Op{
	BinAdd: ir.OpAdd, BinSub: ir.OpSub, BinMul: ir.OpMul, BinDiv: ir.OpDiv,
	BinRem: ir.OpRem, BinAnd: ir.OpAnd, BinOr: ir.OpOr, BinXor: ir.OpXor,
	BinShl: ir.OpShl, BinShr: ir.OpShr,
}

var floatBinOps = map[BinOp]ir.Op{
	BinAdd: ir.OpFAdd, BinSub: ir.OpFSub, BinMul: ir.OpFMul, BinDiv: ir.OpFDiv,
}

var predOf = map[BinOp]ir.Pred{
	BinEq: ir.PredEQ, BinNe: ir.PredNE, BinLt: ir.PredLT,
	BinLe: ir.PredLE, BinGt: ir.PredGT, BinGe: ir.PredGE,
}

func (g *generator) genExpr(e Expr) (ir.Operand, error) {
	switch ex := e.(type) {
	case *IntLit:
		return ir.ConstI(ex.V), nil
	case *FloatLit:
		return ir.ConstF(ex.V), nil
	case *BoolLit:
		return ir.ConstB(ex.V), nil
	case *Ident:
		sym := g.chk.use[ex]
		ptr, err := g.addr(sym, nil)
		if err != nil {
			return ir.Operand{}, err
		}
		return g.b.Load(sym.Elem.IRType(), ptr), nil
	case *IndexExpr:
		sym := g.chk.use[ex]
		ptr, err := g.addr(sym, ex.Index)
		if err != nil {
			return ir.Operand{}, err
		}
		return g.b.Load(sym.Elem.IRType(), ptr), nil
	case *LenExpr:
		sym := g.chk.use[ex]
		if sym.Global {
			return g.b.ArrayLen(sym.GIndex), nil
		}
		return ir.ConstI(sym.Size), nil
	case *UnaryExpr:
		x, err := g.genExpr(ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		if ex.Neg {
			if ex.TypeOf() == TFloat {
				return g.b.Bin(ir.OpFSub, ir.ConstF(0), x), nil
			}
			return g.b.Bin(ir.OpSub, ir.ConstI(0), x), nil
		}
		// !x  <=>  x == false
		return g.b.ICmp(ir.PredEQ, x, ir.ConstB(false)), nil
	case *CastExpr:
		x, err := g.genExpr(ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		from := ex.X.TypeOf()
		switch {
		case from == ex.To:
			return x, nil
		case ex.To == TFloat:
			return g.b.IToF(x), nil
		default:
			return g.b.FToI(x), nil
		}
	case *BinaryExpr:
		return g.genBinary(ex)
	case *CallExpr:
		args := make([]ir.Operand, len(ex.Args))
		for i, a := range ex.Args {
			v, err := g.genExpr(a)
			if err != nil {
				return ir.Operand{}, err
			}
			args[i] = v
		}
		if b, ok := ir.LookupBuiltin(ex.Name); ok {
			return g.b.CallB(b, args...), nil
		}
		return g.b.Call(g.chk.fidx[ex.Name], ex.TypeOf().IRType(), args...), nil
	default:
		return ir.Operand{}, fmt.Errorf("minicc: unhandled expression at %s", e.exprPos())
	}
}

func (g *generator) genBinary(ex *BinaryExpr) (ir.Operand, error) {
	// Short-circuit logical operators lower to control flow plus a phi.
	if ex.Op == BinLAnd || ex.Op == BinLOr {
		x, err := g.genExpr(ex.X)
		if err != nil {
			return ir.Operand{}, err
		}
		lhsB := g.b.Block()
		rhsB := g.b.NewBlock("sc.rhs")
		mergeB := g.b.NewBlock("sc.end")
		if ex.Op == BinLAnd {
			g.b.CondBr(x, rhsB, mergeB)
		} else {
			g.b.CondBr(x, mergeB, rhsB)
		}
		g.b.SetBlock(rhsB)
		y, err := g.genExpr(ex.Y)
		if err != nil {
			return ir.Operand{}, err
		}
		rhsEnd := g.b.Block() // Y may itself branch (nested short-circuits)
		g.b.Br(mergeB)
		g.b.SetBlock(mergeB)
		short := ir.ConstB(ex.Op == BinLOr)
		return g.b.Phi(ir.I1, []ir.Operand{short, y}, []*ir.Block{lhsB, rhsEnd}), nil
	}

	x, err := g.genExpr(ex.X)
	if err != nil {
		return ir.Operand{}, err
	}
	y, err := g.genExpr(ex.Y)
	if err != nil {
		return ir.Operand{}, err
	}
	if p, isCmp := predOf[ex.Op]; isCmp {
		if ex.X.TypeOf() == TFloat {
			return g.b.FCmp(p, x, y), nil
		}
		return g.b.ICmp(p, x, y), nil
	}
	if ex.TypeOf() == TFloat {
		return g.b.Bin(floatBinOps[ex.Op], x, y), nil
	}
	return g.b.Bin(intBinOps[ex.Op], x, y), nil
}
