package minicc

import "repro/internal/ir"

// symbol is a resolved variable: a module global or a function local
// (parameters are locals with ParamIdx >= 0).
type symbol struct {
	Name     string
	Elem     TypeName
	IsArray  bool
	Size     int64 // fixed arrays; unused for dynamic globals
	Dynamic  bool  // dynamically sized global array
	Global   bool
	GIndex   int // index into the module's global table
	ParamIdx int // parameter position, or -1
}

// checked is the result of semantic analysis, consumed by codegen.
type checked struct {
	file   *File
	use    map[Expr]*symbol        // Ident / IndexExpr / LenExpr resolution
	assign map[*AssignStmt]*symbol // assignment target resolution
	locals map[*FuncDecl][]*symbol // per function: params then declared locals
	decl   map[*VarDeclStmt]*symbol
	funcs  map[string]*FuncDecl
	fidx   map[string]int // function order (= IR function index)
}

// scope is a lexical scope in the checker.
type scope struct {
	parent *scope
	names  map[string]*symbol
}

func (s *scope) lookup(name string) *symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.names[name]; ok {
			return sym
		}
	}
	return nil
}

func (s *scope) declare(name string, sym *symbol) bool {
	if _, exists := s.names[name]; exists {
		return false
	}
	s.names[name] = sym
	return true
}

// checker walks the AST verifying types and resolving names.
type checker struct {
	file    string
	res     *checked
	globals *scope

	fn        *FuncDecl
	cur       *scope
	loopDepth int
}

// Check performs semantic analysis on a parsed file.
func Check(f *File) (*checked, error) {
	c := &checker{
		file: f.Name,
		res: &checked{
			file:   f,
			use:    make(map[Expr]*symbol),
			assign: make(map[*AssignStmt]*symbol),
			locals: make(map[*FuncDecl][]*symbol),
			decl:   make(map[*VarDeclStmt]*symbol),
			funcs:  make(map[string]*FuncDecl),
			fidx:   make(map[string]int),
		},
		globals: &scope{names: make(map[string]*symbol)},
	}

	for i, g := range f.Globals {
		if g.Elem == TBool {
			return nil, errf(c.file, g.Pos, "global %q: bool globals are not supported", g.Name)
		}
		sym := &symbol{
			Name: g.Name, Elem: g.Elem, IsArray: g.IsArray, Size: g.Size,
			Dynamic: g.Dynamic, Global: true, GIndex: i, ParamIdx: -1,
		}
		if !c.globals.declare(g.Name, sym) {
			return nil, errf(c.file, g.Pos, "duplicate global %q", g.Name)
		}
	}
	for i, fn := range f.Funcs {
		if _, dup := c.res.funcs[fn.Name]; dup {
			return nil, errf(c.file, fn.Pos, "duplicate function %q", fn.Name)
		}
		if _, isBuiltin := ir.LookupBuiltin(fn.Name); isBuiltin || fn.Name == "len" {
			return nil, errf(c.file, fn.Pos, "function %q shadows a builtin", fn.Name)
		}
		c.res.funcs[fn.Name] = fn
		c.res.fidx[fn.Name] = i
	}
	main, ok := c.res.funcs["main"]
	if !ok {
		return nil, errf(c.file, Pos{1, 1}, "no main function")
	}
	if main.Ret != TVoid {
		return nil, errf(c.file, main.Pos, "main must not return a value")
	}
	for _, p := range main.Params {
		if p.Type == TBool {
			return nil, errf(c.file, p.Pos, "main parameter %q: bool parameters are not supported for main", p.Name)
		}
	}

	for _, fn := range f.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return nil, err
		}
	}
	return c.res, nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.cur = &scope{parent: c.globals, names: make(map[string]*symbol)}
	c.loopDepth = 0
	for i, p := range fn.Params {
		sym := &symbol{Name: p.Name, Elem: p.Type, ParamIdx: i}
		if !c.cur.declare(p.Name, sym) {
			return errf(c.file, p.Pos, "duplicate parameter %q", p.Name)
		}
		c.res.locals[fn] = append(c.res.locals[fn], sym)
	}
	return c.checkBlock(fn.Body, true)
}

// checkBlock checks a block; when sameScope is true the block shares the
// enclosing scope (used for function bodies so params live in body scope).
func (c *checker) checkBlock(b *BlockStmt, sameScope bool) error {
	if !sameScope {
		c.cur = &scope{parent: c.cur, names: make(map[string]*symbol)}
		defer func() { c.cur = c.cur.parent }()
	}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st, false)
	case *VarDeclStmt:
		return c.checkVarDecl(st)
	case *AssignStmt:
		return c.checkAssign(st)
	case *IfStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then, false); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkCond(st.Cond); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkBlock(st.Body, false)
		c.loopDepth--
		return err
	case *ForStmt:
		// The for-header introduces a scope (so "for (var i int = 0; ...)"
		// confines i to the loop).
		c.cur = &scope{parent: c.cur, names: make(map[string]*symbol)}
		defer func() { c.cur = c.cur.parent }()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkCond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkBlock(st.Body, false)
		c.loopDepth--
		return err
	case *ReturnStmt:
		if c.fn.Ret == TVoid {
			if st.Value != nil {
				return errf(c.file, st.Pos, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if st.Value == nil {
			return errf(c.file, st.Pos, "function %q must return %s", c.fn.Name, c.fn.Ret)
		}
		t, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if t != c.fn.Ret {
			return errf(c.file, st.Pos, "return type %s, want %s", t, c.fn.Ret)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(c.file, st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(c.file, st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.X)
		return err
	case *SpawnStmt:
		fn, ok := c.res.funcs[st.Call.Name]
		if !ok {
			return errf(c.file, st.Pos, "spawn of unknown function %q", st.Call.Name)
		}
		if fn.Ret != TVoid {
			return errf(c.file, st.Pos, "spawned function %q must be void", fn.Name)
		}
		return c.checkCallArgs(st.Call, fn)
	case *SyncStmt:
		return nil
	default:
		return errf(c.file, s.stmtPos(), "unhandled statement")
	}
}

func (c *checker) checkVarDecl(st *VarDeclStmt) error {
	sym := &symbol{Name: st.Name, Elem: st.Elem, IsArray: st.IsArray, Size: st.Size, ParamIdx: -1}
	if !c.cur.declare(st.Name, sym) {
		return errf(c.file, st.Pos, "duplicate variable %q in this scope", st.Name)
	}
	c.res.locals[c.fn] = append(c.res.locals[c.fn], sym)
	c.res.decl[st] = sym
	if st.Init != nil {
		t, err := c.checkExpr(st.Init)
		if err != nil {
			return err
		}
		if t != st.Elem {
			return errf(c.file, st.Pos, "cannot initialize %s variable %q with %s", st.Elem, st.Name, t)
		}
	}
	return nil
}

func (c *checker) checkAssign(st *AssignStmt) error {
	sym := c.cur.lookup(st.Name)
	if sym == nil {
		return errf(c.file, st.Pos, "undefined variable %q", st.Name)
	}
	c.res.assign[st] = sym
	if st.Index != nil {
		if !sym.IsArray {
			return errf(c.file, st.Pos, "%q is not an array", st.Name)
		}
		it, err := c.checkExpr(st.Index)
		if err != nil {
			return err
		}
		if it != TInt {
			return errf(c.file, st.Pos, "array index must be int, got %s", it)
		}
	} else if sym.IsArray {
		return errf(c.file, st.Pos, "cannot assign to array %q without an index", st.Name)
	}
	vt, err := c.checkExpr(st.Value)
	if err != nil {
		return err
	}
	if vt != sym.Elem {
		return errf(c.file, st.Pos, "cannot assign %s to %s variable %q", vt, sym.Elem, st.Name)
	}
	return nil
}

func (c *checker) checkCond(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t != TBool {
		return errf(c.file, e.exprPos(), "condition must be bool, got %s", t)
	}
	return nil
}

func (c *checker) checkExpr(e Expr) (TypeName, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(TInt)
		return TInt, nil
	case *FloatLit:
		ex.setType(TFloat)
		return TFloat, nil
	case *BoolLit:
		ex.setType(TBool)
		return TBool, nil
	case *Ident:
		sym := c.cur.lookup(ex.Name)
		if sym == nil {
			return TVoid, errf(c.file, ex.Pos, "undefined variable %q", ex.Name)
		}
		if sym.IsArray {
			return TVoid, errf(c.file, ex.Pos, "array %q used without index", ex.Name)
		}
		c.res.use[ex] = sym
		ex.setType(sym.Elem)
		return sym.Elem, nil
	case *IndexExpr:
		sym := c.cur.lookup(ex.Name)
		if sym == nil {
			return TVoid, errf(c.file, ex.Pos, "undefined array %q", ex.Name)
		}
		if !sym.IsArray {
			return TVoid, errf(c.file, ex.Pos, "%q is not an array", ex.Name)
		}
		c.res.use[ex] = sym
		it, err := c.checkExpr(ex.Index)
		if err != nil {
			return TVoid, err
		}
		if it != TInt {
			return TVoid, errf(c.file, ex.Pos, "array index must be int, got %s", it)
		}
		ex.setType(sym.Elem)
		return sym.Elem, nil
	case *LenExpr:
		sym := c.cur.lookup(ex.Name)
		if sym == nil {
			return TVoid, errf(c.file, ex.Pos, "undefined array %q", ex.Name)
		}
		if !sym.IsArray {
			return TVoid, errf(c.file, ex.Pos, "len of non-array %q", ex.Name)
		}
		c.res.use[ex] = sym
		ex.setType(TInt)
		return TInt, nil
	case *UnaryExpr:
		t, err := c.checkExpr(ex.X)
		if err != nil {
			return TVoid, err
		}
		if ex.Neg {
			if t != TInt && t != TFloat {
				return TVoid, errf(c.file, ex.Pos, "unary minus needs numeric operand, got %s", t)
			}
			ex.setType(t)
			return t, nil
		}
		if t != TBool {
			return TVoid, errf(c.file, ex.Pos, "logical not needs bool operand, got %s", t)
		}
		ex.setType(TBool)
		return TBool, nil
	case *CastExpr:
		t, err := c.checkExpr(ex.X)
		if err != nil {
			return TVoid, err
		}
		if t != TInt && t != TFloat {
			return TVoid, errf(c.file, ex.Pos, "cast needs numeric operand, got %s", t)
		}
		ex.setType(ex.To)
		return ex.To, nil
	case *BinaryExpr:
		return c.checkBinary(ex)
	case *CallExpr:
		return c.checkCall(ex)
	default:
		return TVoid, errf(c.file, e.exprPos(), "unhandled expression")
	}
}

func (c *checker) checkBinary(ex *BinaryExpr) (TypeName, error) {
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return TVoid, err
	}
	yt, err := c.checkExpr(ex.Y)
	if err != nil {
		return TVoid, err
	}
	if xt != yt {
		return TVoid, errf(c.file, ex.Pos, "operand type mismatch: %s vs %s", xt, yt)
	}
	switch ex.Op {
	case BinAdd, BinSub, BinMul, BinDiv:
		if xt != TInt && xt != TFloat {
			return TVoid, errf(c.file, ex.Pos, "arithmetic needs numeric operands, got %s", xt)
		}
		ex.setType(xt)
		return xt, nil
	case BinRem, BinAnd, BinOr, BinXor, BinShl, BinShr:
		if xt != TInt {
			return TVoid, errf(c.file, ex.Pos, "integer operator needs int operands, got %s", xt)
		}
		ex.setType(TInt)
		return TInt, nil
	case BinLAnd, BinLOr:
		if xt != TBool {
			return TVoid, errf(c.file, ex.Pos, "logical operator needs bool operands, got %s", xt)
		}
		ex.setType(TBool)
		return TBool, nil
	case BinEq, BinNe:
		if xt == TVoid {
			return TVoid, errf(c.file, ex.Pos, "cannot compare void values")
		}
		ex.setType(TBool)
		return TBool, nil
	case BinLt, BinLe, BinGt, BinGe:
		if xt != TInt && xt != TFloat {
			return TVoid, errf(c.file, ex.Pos, "ordering needs numeric operands, got %s", xt)
		}
		ex.setType(TBool)
		return TBool, nil
	default:
		return TVoid, errf(c.file, ex.Pos, "unhandled binary operator")
	}
}

func (c *checker) checkCall(ex *CallExpr) (TypeName, error) {
	if b, ok := ir.LookupBuiltin(ex.Name); ok {
		sig := b.Sig()
		if len(ex.Args) != len(sig.Params) {
			return TVoid, errf(c.file, ex.Pos, "builtin %s takes %d arguments, got %d", ex.Name, len(sig.Params), len(ex.Args))
		}
		for i, a := range ex.Args {
			t, err := c.checkExpr(a)
			if err != nil {
				return TVoid, err
			}
			want := fromIRType(sig.Params[i])
			if t != want {
				return TVoid, errf(c.file, a.exprPos(), "builtin %s argument %d: want %s, got %s", ex.Name, i+1, want, t)
			}
		}
		rt := fromIRType(sig.Ret)
		ex.setType(rt)
		return rt, nil
	}
	fn, ok := c.res.funcs[ex.Name]
	if !ok {
		return TVoid, errf(c.file, ex.Pos, "call to undefined function %q", ex.Name)
	}
	if err := c.checkCallArgs(ex, fn); err != nil {
		return TVoid, err
	}
	ex.setType(fn.Ret)
	return fn.Ret, nil
}

func (c *checker) checkCallArgs(ex *CallExpr, fn *FuncDecl) error {
	if len(ex.Args) != len(fn.Params) {
		return errf(c.file, ex.Pos, "%s takes %d arguments, got %d", fn.Name, len(fn.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		t, err := c.checkExpr(a)
		if err != nil {
			return err
		}
		if t != fn.Params[i].Type {
			return errf(c.file, a.exprPos(), "%s argument %d: want %s, got %s", fn.Name, i+1, fn.Params[i].Type, t)
		}
	}
	return nil
}

func fromIRType(t ir.Type) TypeName {
	switch t {
	case ir.I64:
		return TInt
	case ir.F64:
		return TFloat
	case ir.I1:
		return TBool
	default:
		return TVoid
	}
}
