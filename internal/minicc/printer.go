package minicc

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a parsed File back to MiniC source. The output re-parses
// to a semantically identical program (round-trip tested); formatting is
// canonical: tab indentation, one statement per line, minimal parentheses
// driven by operator precedence.
func Print(f *File) string {
	p := &printer{}
	for _, g := range f.Globals {
		p.global(g)
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		p.sb.WriteByte('\n')
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.sb.WriteByte('\n')
		}
		p.fn(fn)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) global(g *GlobalDecl) {
	switch {
	case g.Dynamic:
		p.line("var %s[] %s;", g.Name, g.Elem)
	case g.IsArray:
		p.line("var %s[%d] %s;", g.Name, g.Size, g.Elem)
	default:
		p.line("var %s %s;", g.Name, g.Elem)
	}
}

func (p *printer) fn(fn *FuncDecl) {
	params := make([]string, len(fn.Params))
	for i, prm := range fn.Params {
		params[i] = prm.Name + " " + prm.Type.String()
	}
	ret := ""
	if fn.Ret != TVoid {
		ret = " " + fn.Ret.String()
	}
	p.line("func %s(%s)%s {", fn.Name, strings.Join(params, ", "), ret)
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarDeclStmt:
		switch {
		case st.IsArray:
			p.line("var %s[%d] %s;", st.Name, st.Size, st.Elem)
		case st.Init != nil:
			p.line("var %s %s = %s;", st.Name, st.Elem, p.expr(st.Init, 0))
		default:
			p.line("var %s %s;", st.Name, st.Elem)
		}
	case *AssignStmt:
		if st.Index != nil {
			p.line("%s[%s] = %s;", st.Name, p.expr(st.Index, 0), p.expr(st.Value, 0))
		} else {
			p.line("%s = %s;", st.Name, p.expr(st.Value, 0))
		}
	case *IfStmt:
		p.ifChain(st)
	case *WhileStmt:
		p.line("while (%s) {", p.expr(st.Cond, 0))
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = strings.TrimSuffix(p.inlineStmt(st.Init), ";")
		}
		if st.Cond != nil {
			cond = p.expr(st.Cond, 0)
		}
		if st.Post != nil {
			post = strings.TrimSuffix(p.inlineStmt(st.Post), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, inner := range st.Body.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", p.expr(st.Value, 0))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ExprStmt:
		p.line("%s;", p.expr(st.X, 0))
	case *SpawnStmt:
		p.line("spawn %s;", p.expr(st.Call, 0))
	case *SyncStmt:
		p.line("sync;")
	default:
		p.line("/* unhandled statement */")
	}
}

// ifChain prints if / else-if / else chains flat.
func (p *printer) ifChain(st *IfStmt) {
	p.line("if (%s) {", p.expr(st.Cond, 0))
	p.indent++
	for _, inner := range st.Then.Stmts {
		p.stmt(inner)
	}
	p.indent--
	switch els := st.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.sb.WriteString(strings.Repeat("\t", p.indent))
		p.sb.WriteString("} else ")
		// Re-print the chained if at the same indent, merging the brace.
		rest := &printer{indent: p.indent}
		rest.ifChain(els)
		chained := rest.sb.String()
		p.sb.WriteString(strings.TrimPrefix(chained, strings.Repeat("\t", p.indent)))
	case *BlockStmt:
		p.line("} else {")
		p.indent++
		for _, inner := range els.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	}
}

// inlineStmt prints a simple statement without indentation or newline
// (for for-headers).
func (p *printer) inlineStmt(s Stmt) string {
	sub := &printer{}
	sub.stmt(s)
	return strings.TrimSpace(sub.sb.String())
}

// binPrecOf mirrors the parser's precedence table.
var binPrecOf = map[BinOp]int{
	BinLOr:  1,
	BinLAnd: 2,
	BinEq:   3, BinNe: 3,
	BinLt: 4, BinLe: 4, BinGt: 4, BinGe: 4,
	BinOr:  5,
	BinXor: 6,
	BinAnd: 7,
	BinShl: 8, BinShr: 8,
	BinAdd: 9, BinSub: 9,
	BinMul: 10, BinDiv: 10, BinRem: 10,
}

var binSymbol = map[BinOp]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinRem: "%",
	BinAnd: "&", BinOr: "|", BinXor: "^", BinShl: "<<", BinShr: ">>",
	BinLAnd: "&&", BinLOr: "||",
	BinEq: "==", BinNe: "!=", BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=",
}

// expr renders e, parenthesizing when its precedence is below min.
func (p *printer) expr(e Expr, min int) string {
	switch ex := e.(type) {
	case *IntLit:
		return strconv.FormatInt(ex.V, 10)
	case *FloatLit:
		s := strconv.FormatFloat(ex.V, 'g', -1, 64)
		// Float literals must lex as floats.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *BoolLit:
		if ex.V {
			return "true"
		}
		return "false"
	case *Ident:
		return ex.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ex.Name, p.expr(ex.Index, 0))
	case *LenExpr:
		return fmt.Sprintf("len(%s)", ex.Name)
	case *UnaryExpr:
		op := "!"
		if ex.Neg {
			op = "-"
		}
		return op + p.expr(ex.X, 11)
	case *CastExpr:
		return fmt.Sprintf("%s(%s)", ex.To, p.expr(ex.X, 0))
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = p.expr(a, 0)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	case *BinaryExpr:
		prec := binPrecOf[ex.Op]
		s := fmt.Sprintf("%s %s %s",
			p.expr(ex.X, prec), binSymbol[ex.Op], p.expr(ex.Y, prec+1))
		if prec < min {
			return "(" + s + ")"
		}
		return s
	default:
		return "/*?*/"
	}
}
