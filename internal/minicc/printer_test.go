package minicc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interp"
)

// reprint parses src, prints the AST, and re-parses the output; both
// versions must compile to programs with identical behavior.
func reprint(t *testing.T, name, src string) string {
	t.Helper()
	f, err := Parse(name, src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	printed := Print(f)
	if _, err := Parse(name+"-printed", printed); err != nil {
		t.Fatalf("printed source does not parse: %v\n%s", err, printed)
	}
	return printed
}

// assertSameBehavior compiles two sources and compares their outputs on
// the given argument/global sets.
func assertSameBehavior(t *testing.T, srcA, srcB string, args []uint64, globals map[string][]uint64) {
	t.Helper()
	ma, err := Compile("a.mc", srcA)
	if err != nil {
		t.Fatalf("compile A: %v", err)
	}
	mb, err := Compile("b.mc", srcB)
	if err != nil {
		t.Fatalf("compile B: %v", err)
	}
	ra := interp.NewRunner(ma, interp.Config{MaxDynInstrs: 10_000_000})
	rb := interp.NewRunner(mb, interp.Config{MaxDynInstrs: 10_000_000})
	a := ra.Run(interp.Binding{Args: args, Globals: globals}, nil, nil)
	b := rb.Run(interp.Binding{Args: args, Globals: globals}, nil, nil)
	if a.Status != b.Status || len(a.Output) != len(b.Output) {
		t.Fatalf("behavior differs: %v/%d vs %v/%d", a.Status, len(a.Output), b.Status, len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("output[%d]: %x vs %x", i, a.Output[i], b.Output[i])
		}
	}
}

func TestPrinterRoundTripFeatureProgram(t *testing.T) {
	src := `
var g int;
var data[] int;
var buf[4] float;

func helper(a int, b float) float {
	if (a < 0) { return b; }
	else if (a == 0) { return 0.0; }
	return float(a) * b;
}

func worker(tid int) { g = g + tid; }

func main(n int, scale float) {
	var acc float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0 && i < 100 || !(i == 3)) {
			acc = acc + helper(data[i % len(data)], scale);
		}
		while (acc > 1.0e6) { acc = acc / 2.0; }
		if (i == 5) { continue; }
		if (acc < -100.0) { break; }
	}
	buf[0] = acc;
	spawn worker(1);
	sync;
	emitf(buf[0]);
	emiti(g);
	emiti((2 + 3) * 4 - 1 << 2 & 7 | 9 ^ 3);
	emiti(-n + int(1.5));
}`
	printed := reprint(t, "feature.mc", src)
	globals := map[string][]uint64{"data": {1, 2, 3, 4, 5}}
	args := []uint64{10, 0x4000000000000000} // scale = 2.0
	assertSameBehavior(t, src, printed, args, globals)

	// Printing the printed source again must be a fixpoint.
	f2, err := Parse("p2.mc", printed)
	if err != nil {
		t.Fatal(err)
	}
	if again := Print(f2); again != printed {
		t.Fatalf("printer not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
	}
}

func TestPrinterRoundTripBenchmarkStyle(t *testing.T) {
	// Round-trip a program with the structures the benchmarks use.
	src := `
var a[] float;
func main(n int) {
	for (var k int = 0; k < n; k = k + 1) {
		for (var i int = k + 1; i < n; i = i + 1) {
			a[i * n + k] = a[i * n + k] / a[k * n + k];
			for (var j int = k + 1; j < n; j = j + 1) {
				a[i * n + j] = a[i * n + j] - a[i * n + k] * a[k * n + j];
			}
		}
	}
	var det float = 1.0;
	for (var k int = 0; k < n; k = k + 1) { det = det * a[k * n + k]; }
	emitf(det);
}`
	printed := reprint(t, "lu.mc", src)
	aData := make([]uint64, 9)
	for i := range aData {
		v := 1.0
		if i%4 == 0 {
			v = 5.0
		}
		aData[i] = mustFloatBits(v)
	}
	assertSameBehavior(t, src, printed, []uint64{3}, map[string][]uint64{"a": aData})
}

func mustFloatBits(f float64) uint64 {
	return math.Float64bits(f)
}

func TestPrinterPrecedenceMinimal(t *testing.T) {
	// The printer should not wrap everything in parentheses.
	f, err := Parse("p.mc", `func main() { emiti(1 + 2 * 3); emiti((1 + 2) * 3); }`)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(f)
	if !strings.Contains(out, "emiti(1 + 2 * 3);") {
		t.Errorf("unnecessary parens:\n%s", out)
	}
	if !strings.Contains(out, "emiti((1 + 2) * 3);") {
		t.Errorf("necessary parens dropped:\n%s", out)
	}
}

func TestPrinterRoundTripGeneratedPrograms(t *testing.T) {
	// Fuzz the printer with the differential generator's random programs.
	for seed := int64(0); seed < 60; seed++ {
		src, want := generate(seed)
		printed := reprint(t, "gen.mc", src)
		m, err := Compile("gen-printed.mc", printed)
		if err != nil {
			t.Fatalf("seed %d: printed program does not compile: %v\n%s", seed, err, printed)
		}
		r := interp.NewRunner(m, interp.Config{MaxDynInstrs: 1_000_000})
		res := r.Run(interp.Binding{}, nil, nil)
		if res.Status != interp.StatusOK {
			t.Fatalf("seed %d: printed program status %v", seed, res.Status)
		}
		if len(res.Output) != len(want) {
			t.Fatalf("seed %d: output count %d, want %d", seed, len(res.Output), len(want))
		}
		for i, w := range want {
			if int64(res.Output[i]) != w {
				t.Fatalf("seed %d: output[%d] = %d, want %d\nprinted:\n%s",
					seed, i, int64(res.Output[i]), w, printed)
			}
		}
	}
}
