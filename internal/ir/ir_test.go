package ir

import (
	"strings"
	"testing"
)

// sumModule builds: main() { s=0; for i=0..n-1 { s += i }; emiti(s) } with
// n passed as main's single parameter.
func sumModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("sum")
	f := m.AddFunction("main", []Type{I64}, Void)
	b := NewBuilder(m, f)

	sVar := b.Alloca(ConstI(1))
	iVar := b.Alloca(ConstI(1))
	b.Store(ConstI(0), sVar)
	b.Store(ConstI(0), iVar)

	cond := b.NewBlock("cond")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(cond)

	b.SetBlock(cond)
	i := b.Load(I64, iVar)
	c := b.ICmp(PredLT, i, Reg(0, I64))
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	s := b.Load(I64, sVar)
	i2 := b.Load(I64, iVar)
	b.Store(b.Bin(OpAdd, s, i2), sVar)
	b.Store(b.Bin(OpAdd, i2, ConstI(1)), iVar)
	b.Br(cond)

	b.SetBlock(exit)
	b.CallB(BuiltinEmitI, b.Load(I64, sVar))
	b.RetVoid()

	m.Finalize()
	return m
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{Void: "void", I1: "i1", I64: "i64", F64: "f64", Ptr: "ptr"}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestTypeBits(t *testing.T) {
	if I1.Bits() != 1 {
		t.Errorf("I1.Bits() = %d, want 1", I1.Bits())
	}
	for _, ty := range []Type{I64, F64, Ptr} {
		if ty.Bits() != 64 {
			t.Errorf("%s.Bits() = %d, want 64", ty, ty.Bits())
		}
	}
}

func TestTypePredicates(t *testing.T) {
	if !I1.IsInt() || !I64.IsInt() || F64.IsInt() || Ptr.IsInt() {
		t.Error("IsInt misclassifies")
	}
	if !F64.IsFloat() || I64.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
}

func TestOpTerminators(t *testing.T) {
	for _, op := range []Op{OpBr, OpCondBr, OpRet} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLoad, OpCall, OpDetect, OpJoin, OpPhi} {
		if op.IsTerminator() {
			t.Errorf("%s should not be a terminator", op)
		}
	}
}

func TestOpCyclesPositive(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if op.Cycles() <= 0 {
			t.Errorf("%s.Cycles() = %d, want > 0", op, op.Cycles())
		}
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestLookupBuiltin(t *testing.T) {
	b, ok := LookupBuiltin("sqrt")
	if !ok || b != BuiltinSqrt {
		t.Fatalf("LookupBuiltin(sqrt) = %v, %v", b, ok)
	}
	if _, ok := LookupBuiltin("no_such_builtin"); ok {
		t.Fatal("LookupBuiltin accepted an unknown name")
	}
	for bi := Builtin(0); int(bi) < NumBuiltins(); bi++ {
		sig := bi.Sig()
		if sig.Name == "" {
			t.Errorf("builtin %d has no name", bi)
		}
		got, ok := LookupBuiltin(sig.Name)
		if !ok || got != bi {
			t.Errorf("LookupBuiltin(%s) = %v, %v; want %v", sig.Name, got, ok, bi)
		}
	}
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := sumModule(t)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestFinalizeAssignsSequentialIDs(t *testing.T) {
	m := sumModule(t)
	for i, in := range m.Instrs {
		if in.ID != i {
			t.Fatalf("instr %d has ID %d", i, in.ID)
		}
	}
	if m.NumInstrs() != len(m.Instrs) {
		t.Fatalf("NumInstrs inconsistent")
	}
	if m.NumBlocks() != len(m.Funcs[0].Blocks) {
		t.Fatalf("NumBlocks = %d, want %d", m.NumBlocks(), len(m.Funcs[0].Blocks))
	}
	// Loc must map every ID back to its position.
	for id, in := range m.Instrs {
		loc := m.Loc(id)
		got := m.Funcs[loc.Func].Blocks[loc.Block].Instrs[loc.Pos]
		if got != in {
			t.Fatalf("Loc(%d) does not round-trip", id)
		}
	}
}

func TestGlobalBlockIndex(t *testing.T) {
	m := NewModule("two")
	f1 := m.AddFunction("main", nil, Void)
	b1 := NewBuilder(m, f1)
	b1.RetVoid()
	f2 := m.AddFunction("aux", nil, Void)
	b2 := NewBuilder(m, f2)
	extra := b2.NewBlock("x")
	b2.Br(extra)
	b2.SetBlock(extra)
	b2.RetVoid()
	m.Finalize()

	if got := m.GlobalBlockIndex(0, 0); got != 0 {
		t.Errorf("GlobalBlockIndex(0,0) = %d, want 0", got)
	}
	if got := m.GlobalBlockIndex(1, 0); got != 1 {
		t.Errorf("GlobalBlockIndex(1,0) = %d, want 1", got)
	}
	if got := m.GlobalBlockIndex(1, 1); got != 2 {
		t.Errorf("GlobalBlockIndex(1,1) = %d, want 2", got)
	}
	if m.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3", m.NumBlocks())
	}
}

func TestInjectableIDs(t *testing.T) {
	m := sumModule(t)
	ids := m.InjectableIDs(false)
	if len(ids) == 0 {
		t.Fatal("no injectable instructions")
	}
	for _, id := range ids {
		if !m.Instrs[id].HasResult() {
			t.Errorf("instr %d (%s) has no result but is injectable", id, m.Instrs[id].Op)
		}
	}
	// Stores, branches, rets must be excluded.
	for _, in := range m.Instrs {
		if in.Op == OpStore || in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet {
			for _, id := range ids {
				if id == in.ID {
					t.Errorf("non-value instr %s is injectable", in.Op)
				}
			}
		}
	}

	// Dup-marked instructions are excluded when excludeDup is set.
	m.Instrs[ids[0]].Dup = true
	ids2 := m.InjectableIDs(true)
	if len(ids2) != len(ids)-1 {
		t.Errorf("excludeDup: got %d ids, want %d", len(ids2), len(ids)-1)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sumModule(t)
	cp := m.Clone()
	if err := Verify(cp); err != nil {
		t.Fatalf("Verify(clone): %v", err)
	}
	if cp.NumInstrs() != m.NumInstrs() {
		t.Fatalf("clone has %d instrs, want %d", cp.NumInstrs(), m.NumInstrs())
	}
	// Mutating the clone must not affect the original.
	cp.Funcs[0].Blocks[0].Instrs[0].Comment = "mutated"
	if m.Funcs[0].Blocks[0].Instrs[0].Comment == "mutated" {
		t.Fatal("clone shares instruction storage with original")
	}
	cp.Instrs[0].Args[0] = ConstI(99)
	if m.Instrs[0].Args[0].Imm == 99 {
		t.Fatal("clone shares operand storage with original")
	}
}

func TestModuleStringSmoke(t *testing.T) {
	m := sumModule(t)
	s := m.String()
	for _, want := range []string{"module sum", "func @main", "icmp lt", "emiti", "condbr"} {
		if !strings.Contains(s, want) {
			t.Errorf("module dump missing %q:\n%s", want, s)
		}
	}
}

func TestOperandString(t *testing.T) {
	if got := ConstI(7).String(); got != "7:i64" {
		t.Errorf("ConstI(7).String() = %q", got)
	}
	if got := ConstF(2.5).String(); got != "2.5:f64" {
		t.Errorf("ConstF(2.5).String() = %q", got)
	}
	if got := Reg(3, I64).String(); got != "%r3:i64" {
		t.Errorf("Reg(3).String() = %q", got)
	}
	if ConstB(true).Imm != 1 || ConstB(false).Imm != 0 {
		t.Error("ConstB payload wrong")
	}
}

func TestVerifyCatchesBrokenModules(t *testing.T) {
	build := func(mutate func(*Module)) error {
		m := sumModule(t)
		mutate(m)
		m.Finalize()
		return Verify(m)
	}

	cases := []struct {
		name   string
		mutate func(*Module)
	}{
		{"no-main", func(m *Module) {
			m.Funcs[0].Name = "notmain"
			delete(mapOfFuncs(m), "main")
		}},
		{"missing-terminator", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}},
		{"bad-successor", func(m *Module) {
			for _, b := range m.Funcs[0].Blocks {
				if t := b.Terminator(); t != nil && t.Op == OpBr {
					t.Succs[0] = 99
					return
				}
			}
		}},
		{"reg-out-of-range", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[0].Args = []Operand{Reg(1000, I64)}
		}},
		{"bad-callee", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpCall, Type: Void, Dst: -1, Callee: 42}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"condbr-non-bool", func(m *Module) {
			for _, b := range m.Funcs[0].Blocks {
				if t := b.Terminator(); t != nil && t.Op == OpCondBr {
					t.Args[0] = ConstI(1) // i64, not i1
					return
				}
			}
		}},
		{"binary-arity", func(m *Module) {
			for _, in := range m.Instrs {
				if in.Op == OpAdd {
					in.Args = in.Args[:1]
					return
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := build(tc.mutate); err == nil {
				t.Errorf("Verify accepted a %s module", tc.name)
			}
		})
	}
}

// mapOfFuncs exposes the internal name map for the no-main test.
func mapOfFuncs(m *Module) map[string]int { return m.funcByName }

func TestBuilderPanicsOnEmitAfterTerminator(t *testing.T) {
	m := NewModule("p")
	f := m.AddFunction("main", nil, Void)
	b := NewBuilder(m, f)
	b.RetVoid()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic emitting into a terminated block")
		}
	}()
	b.RetVoid()
}

func TestModuleLookupHelpers(t *testing.T) {
	m := sumModule(t)
	if i, ok := m.FuncByName("main"); !ok || i != 0 {
		t.Errorf("FuncByName(main) = %d, %v", i, ok)
	}
	if _, ok := m.FuncByName("nope"); ok {
		t.Error("FuncByName found nonexistent function")
	}
	m2 := NewModule("g")
	m2.AddGlobal("wall", 4, nil)
	if i, ok := m2.GlobalByName("wall"); !ok || i != 0 {
		t.Errorf("GlobalByName(wall) = %d, %v", i, ok)
	}
	if _, ok := m2.GlobalByName("nope"); ok {
		t.Error("GlobalByName found nonexistent global")
	}
	if f := m.Funcs[m.Entry()]; f.Entry() != f.Blocks[0] {
		t.Error("Function.Entry() wrong")
	}
	// No main: Entry returns -1.
	f3 := NewModule("x")
	f3.AddFunction("aux", nil, Void)
	if f3.Entry() != -1 {
		t.Errorf("Entry() = %d, want -1", f3.Entry())
	}
}

func TestBuilderConversionsAndBlockAccessor(t *testing.T) {
	m := NewModule("conv")
	f := m.AddFunction("main", []Type{I64}, Void)
	b := NewBuilder(m, f)
	if b.Block() != f.Blocks[0] {
		t.Error("Block() accessor wrong")
	}
	fv := b.IToF(Reg(0, I64))
	iv := b.FToI(fv)
	b.CallB(BuiltinEmitI, iv)
	b.RetVoid()
	m.Finalize()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestOpHasResultClassification(t *testing.T) {
	for _, op := range []Op{OpStore, OpBr, OpCondBr, OpRet, OpSpawn, OpJoin, OpDetect} {
		if op.HasResult() {
			t.Errorf("%s.HasResult() = true", op)
		}
	}
	for _, op := range []Op{OpAdd, OpLoad, OpAlloca, OpPhi, OpSelect, OpGEP, OpICmp} {
		if !op.HasResult() {
			t.Errorf("%s.HasResult() = false", op)
		}
	}
}

func TestEnumStringsOutOfRange(t *testing.T) {
	if s := Op(200).String(); !strings.Contains(s, "op(") {
		t.Errorf("out-of-range Op string %q", s)
	}
	if s := Pred(99).String(); !strings.Contains(s, "pred(") {
		t.Errorf("out-of-range Pred string %q", s)
	}
	if s := Type(99).String(); !strings.Contains(s, "type(") {
		t.Errorf("out-of-range Type string %q", s)
	}
	if c := Op(200).Cycles(); c <= 0 {
		t.Errorf("out-of-range Op cycles %d", c)
	}
}

func TestVerifyMoreBrokenModules(t *testing.T) {
	build := func(mutate func(*Module)) error {
		m := sumModule(t)
		mutate(m)
		m.Finalize()
		return Verify(m)
	}
	cases := []struct {
		name   string
		mutate func(*Module)
	}{
		{"phi-arity-mismatch", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpPhi, Type: I64, Dst: 0,
				Args: []Operand{ConstI(1), ConstI(2)}, Succs: []int{0}}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"void-fn-returns-value", func(m *Module) {
			for _, b := range m.Funcs[0].Blocks {
				if tr := b.Terminator(); tr != nil && tr.Op == OpRet {
					tr.Args = []Operand{ConstI(1)}
					return
				}
			}
		}},
		{"bad-global-ref", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpGlobalAddr, Type: Ptr, Dst: 0, Global: 42}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"builtin-bad-ret-type", func(m *Module) {
			for _, in := range m.Instrs {
				if in.Op == OpCallB && in.BFunc == BuiltinEmitI {
					in.Type = I64
					in.Dst = 0
					return
				}
			}
		}},
		{"detect-non-bool", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpDetect, Type: Void, Dst: -1, Args: []Operand{ConstI(3)}}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"select-non-bool-cond", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpSelect, Type: I64, Dst: 0,
				Args: []Operand{ConstI(1), ConstI(2), ConstI(3)}}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"float-op-int-result", func(m *Module) {
			b := m.Funcs[0].Blocks[0]
			in := &Instr{Op: OpFAdd, Type: I64, Dst: 0, Args: []Operand{ConstF(1), ConstF(2)}}
			b.Instrs = append([]*Instr{in}, b.Instrs...)
		}},
		{"icmp-bad-result", func(m *Module) {
			for _, in := range m.Instrs {
				if in.Op == OpICmp {
					in.Type = I64
					return
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := build(tc.mutate); err == nil {
				t.Errorf("Verify accepted a %s module", tc.name)
			}
		})
	}
}
