package ir

import (
	"fmt"
	"strconv"
)

// OperandKind discriminates the variants of Operand.
type OperandKind uint8

// Operand kinds.
const (
	OperNone   OperandKind = iota
	OperReg                // a virtual register (SSA value or alloca slot address)
	OperConst              // integer, boolean, or pointer constant in Imm
	OperConstF             // floating constant in FImm
)

// Operand is one input of an instruction. Operands are plain values (no
// pointers, no interfaces) so the interpreter can resolve them without
// allocation or dynamic dispatch.
type Operand struct {
	Kind OperandKind
	Type Type
	Reg  int     // register index when Kind == OperReg
	Imm  int64   // constant payload when Kind == OperConst
	FImm float64 // constant payload when Kind == OperConstF
}

// Reg returns a register operand of the given type.
func Reg(r int, t Type) Operand { return Operand{Kind: OperReg, Type: t, Reg: r} }

// ConstI returns an i64 constant operand.
func ConstI(v int64) Operand { return Operand{Kind: OperConst, Type: I64, Imm: v} }

// ConstB returns an i1 constant operand.
func ConstB(v bool) Operand {
	var i int64
	if v {
		i = 1
	}
	return Operand{Kind: OperConst, Type: I1, Imm: i}
}

// ConstF returns an f64 constant operand.
func ConstF(v float64) Operand { return Operand{Kind: OperConstF, Type: F64, FImm: v} }

// String renders the operand for IR dumps. The form is unambiguous and
// parseable: registers as %rN:type, constants as value:type.
func (o Operand) String() string {
	switch o.Kind {
	case OperReg:
		return fmt.Sprintf("%%r%d:%s", o.Reg, o.Type)
	case OperConst:
		return fmt.Sprintf("%d:%s", o.Imm, o.Type)
	case OperConstF:
		return fmt.Sprintf("%s:%s", strconv.FormatFloat(o.FImm, 'g', -1, 64), o.Type)
	default:
		return "<none>"
	}
}

// Instr is a single static IR instruction.
//
// After Module.Finalize every instruction carries a module-unique ID; the
// fault injector addresses injection sites by that ID and the profiler
// accumulates per-ID dynamic cycle counts.
type Instr struct {
	ID   int  // module-wide static instruction ID (assigned by Finalize)
	Op   Op   // opcode
	Type Type // result type (Void if no result)
	Dst  int  // destination register, -1 if none
	Pred Pred // comparison predicate for OpICmp / OpFCmp

	Args []Operand // value operands

	// Succs holds block indices: branch targets for OpBr/OpCondBr, and the
	// incoming-block list for OpPhi (parallel to Args).
	Succs []int

	Callee  int     // function index for OpCall / OpSpawn
	BFunc   Builtin // builtin for OpCallB
	Global  int     // global index for OpGlobalAddr / OpArrayLen
	Comment string  // optional annotation carried into IR dumps

	// Dup marks instructions inserted by the duplication transform (the
	// clone, the comparison, and the detector). Dup instructions are not
	// themselves counted as protectable program instructions.
	Dup bool
}

// HasResult reports whether the instruction defines a register value.
func (in *Instr) HasResult() bool {
	return in.Dst >= 0 && in.Type != Void
}

// IsInjectable reports whether the instruction is a valid fault-injection
// site under the fault model: it must produce a value (single-bit flips go
// into instruction return values).
func (in *Instr) IsInjectable() bool {
	return in.HasResult()
}

// Clone returns a deep copy of the instruction (fresh operand and
// successor slices). The copy keeps ID; callers re-finalize the module.
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Operand(nil), in.Args...)
	cp.Succs = append([]int(nil), in.Succs...)
	return &cp
}

// String renders the instruction for IR dumps.
func (in *Instr) String() string {
	s := ""
	if in.HasResult() {
		s = fmt.Sprintf("%%r%d:%s = ", in.Dst, in.Type)
	}
	s += in.Op.String()
	switch in.Op {
	case OpICmp, OpFCmp:
		s += " " + in.Pred.String()
	case OpCallB:
		s += " @" + in.BFunc.String()
	case OpCall, OpSpawn:
		s += fmt.Sprintf(" fn%d", in.Callee)
	case OpGlobalAddr, OpArrayLen:
		s += fmt.Sprintf(" @g%d", in.Global)
	}
	for i, a := range in.Args {
		if i > 0 {
			s += ","
		}
		s += " " + a.String()
	}
	if len(in.Succs) > 0 {
		s += " ->"
		for _, b := range in.Succs {
			s += fmt.Sprintf(" bb%d", b)
		}
	}
	if in.Dup {
		s += " !dup"
	}
	if in.Comment != "" {
		s += "  ; " + in.Comment
	}
	return s
}
