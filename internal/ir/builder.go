package ir

import "fmt"

// Builder incrementally constructs a function's instructions. It tracks
// the current insertion block and hands out fresh virtual registers.
//
// Register convention: registers 0..len(Params)-1 hold the incoming
// arguments; the builder allocates upward from there.
type Builder struct {
	Mod  *Module
	Fn   *Function
	cur  *Block
	next int // next free register
}

// NewBuilder returns a builder positioned on a fresh entry block of fn.
func NewBuilder(m *Module, fn *Function) *Builder {
	if fn.NumRegs < len(fn.Params) {
		fn.NumRegs = len(fn.Params)
	}
	b := &Builder{Mod: m, Fn: fn, next: len(fn.Params)}
	entry := b.NewBlock("entry")
	b.SetBlock(entry)
	return b
}

// NewBlock appends an empty block to the function and returns it.
func (b *Builder) NewBlock(name string) *Block {
	blk := &Block{Index: len(b.Fn.Blocks), Name: name}
	b.Fn.Blocks = append(b.Fn.Blocks, blk)
	return blk
}

// SetBlock moves the insertion point to blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// NewReg allocates a fresh virtual register.
func (b *Builder) NewReg() int {
	r := b.next
	b.next++
	if b.next > b.Fn.NumRegs {
		b.Fn.NumRegs = b.next
	}
	return r
}

// Terminated reports whether the current block already has a terminator.
func (b *Builder) Terminated() bool { return b.cur.Terminator() != nil }

func (b *Builder) emit(in *Instr) *Instr {
	if b.Terminated() {
		panic(fmt.Sprintf("ir: emit into terminated block bb%d of %s", b.cur.Index, b.Fn.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *Builder) emitValue(op Op, t Type, args ...Operand) Operand {
	dst := b.NewReg()
	b.emit(&Instr{Op: op, Type: t, Dst: dst, Args: args})
	return Reg(dst, t)
}

// Bin emits a binary arithmetic/logic instruction and returns its result.
func (b *Builder) Bin(op Op, x, y Operand) Operand {
	t := x.Type
	switch op {
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		t = F64
	}
	return b.emitValue(op, t, x, y)
}

// ICmp emits a signed integer comparison.
func (b *Builder) ICmp(p Pred, x, y Operand) Operand {
	dst := b.NewReg()
	b.emit(&Instr{Op: OpICmp, Type: I1, Dst: dst, Pred: p, Args: []Operand{x, y}})
	return Reg(dst, I1)
}

// FCmp emits a floating comparison.
func (b *Builder) FCmp(p Pred, x, y Operand) Operand {
	dst := b.NewReg()
	b.emit(&Instr{Op: OpFCmp, Type: I1, Dst: dst, Pred: p, Args: []Operand{x, y}})
	return Reg(dst, I1)
}

// IToF emits an i64 -> f64 conversion.
func (b *Builder) IToF(x Operand) Operand { return b.emitValue(OpIToF, F64, x) }

// FToI emits an f64 -> i64 conversion.
func (b *Builder) FToI(x Operand) Operand { return b.emitValue(OpFToI, I64, x) }

// Alloca emits a stack allocation of count words and returns the pointer.
func (b *Builder) Alloca(count Operand) Operand { return b.emitValue(OpAlloca, Ptr, count) }

// Load emits a load of type t from ptr.
func (b *Builder) Load(t Type, ptr Operand) Operand { return b.emitValue(OpLoad, t, ptr) }

// Store emits a store of val to ptr.
func (b *Builder) Store(val, ptr Operand) {
	b.emit(&Instr{Op: OpStore, Type: Void, Dst: -1, Args: []Operand{val, ptr}})
}

// GEP emits pointer arithmetic: ptr + idx (word-granular).
func (b *Builder) GEP(ptr, idx Operand) Operand { return b.emitValue(OpGEP, Ptr, ptr, idx) }

// GlobalAddr emits the address of global g.
func (b *Builder) GlobalAddr(g int) Operand {
	dst := b.NewReg()
	b.emit(&Instr{Op: OpGlobalAddr, Type: Ptr, Dst: dst, Global: g})
	return Reg(dst, Ptr)
}

// ArrayLen emits the runtime length (words) of global g.
func (b *Builder) ArrayLen(g int) Operand {
	dst := b.NewReg()
	b.emit(&Instr{Op: OpArrayLen, Type: I64, Dst: dst, Global: g})
	return Reg(dst, I64)
}

// Br emits an unconditional branch to blk.
func (b *Builder) Br(blk *Block) {
	b.emit(&Instr{Op: OpBr, Type: Void, Dst: -1, Succs: []int{blk.Index}})
}

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Operand, then, els *Block) {
	b.emit(&Instr{Op: OpCondBr, Type: Void, Dst: -1, Args: []Operand{cond}, Succs: []int{then.Index, els.Index}})
}

// Ret emits a return. Pass a zero Operand{} for void returns.
func (b *Builder) Ret(val Operand) {
	in := &Instr{Op: OpRet, Type: Void, Dst: -1}
	if val.Kind != OperNone {
		in.Args = []Operand{val}
	}
	b.emit(in)
}

// RetVoid emits a value-less return.
func (b *Builder) RetVoid() { b.Ret(Operand{}) }

// Call emits a direct call to function index fn.
func (b *Builder) Call(fn int, ret Type, args ...Operand) Operand {
	in := &Instr{Op: OpCall, Type: ret, Dst: -1, Callee: fn, Args: args}
	if ret != Void {
		in.Dst = b.NewReg()
	}
	b.emit(in)
	if ret == Void {
		return Operand{}
	}
	return Reg(in.Dst, ret)
}

// CallB emits a builtin call.
func (b *Builder) CallB(fn Builtin, args ...Operand) Operand {
	sig := fn.Sig()
	in := &Instr{Op: OpCallB, Type: sig.Ret, Dst: -1, BFunc: fn, Args: args}
	if sig.Ret != Void {
		in.Dst = b.NewReg()
	}
	b.emit(in)
	if sig.Ret == Void {
		return Operand{}
	}
	return Reg(in.Dst, sig.Ret)
}

// Select emits select(cond, a, b).
func (b *Builder) Select(cond, x, y Operand) Operand {
	return b.emitValue(OpSelect, x.Type, cond, x, y)
}

// Phi emits an SSA phi node; incoming[i] arrives from blocks[i].
func (b *Builder) Phi(t Type, incoming []Operand, blocks []*Block) Operand {
	dst := b.NewReg()
	succs := make([]int, len(blocks))
	for i, blk := range blocks {
		succs[i] = blk.Index
	}
	b.emit(&Instr{Op: OpPhi, Type: t, Dst: dst, Args: incoming, Succs: succs})
	return Reg(dst, t)
}

// Spawn emits a thread spawn of function fn with args.
func (b *Builder) Spawn(fn int, args ...Operand) {
	b.emit(&Instr{Op: OpSpawn, Type: Void, Dst: -1, Callee: fn, Args: args})
}

// Join emits a join-all barrier.
func (b *Builder) Join() {
	b.emit(&Instr{Op: OpJoin, Type: Void, Dst: -1})
}

// Detect emits the duplication-check detector: halts with a Detected
// outcome when ok is false at runtime.
func (b *Builder) Detect(ok Operand) {
	b.emit(&Instr{Op: OpDetect, Type: Void, Dst: -1, Args: []Operand{ok}})
}
