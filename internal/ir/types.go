// Package ir defines a small typed intermediate representation modeled
// after the subset of LLVM IR that silent-data-corruption studies rely on:
// instructions with typed return values, basic blocks forming an explicit
// control-flow graph, and a module of functions plus global data.
//
// The representation is deliberately compact so that the interpreter in
// package interp can execute it quickly: values live in dense per-frame
// register files, operands are plain structs (no interface dispatch), and
// every static instruction carries a module-wide ID used by the fault
// injector and the profiler.
package ir

import "fmt"

// Type is the type of an IR value. The IR is word-oriented: every value
// occupies one 64-bit register or memory word.
type Type uint8

// The IR type universe. I1 is a boolean stored as 0 or 1 in the low bit,
// I64 is a signed 64-bit integer, F64 an IEEE-754 double, and Ptr a word
// index into the flat execution memory.
const (
	Void Type = iota
	I1
	I64
	F64
	Ptr
)

// String returns the LLVM-flavoured spelling of t.
func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// IsInt reports whether t is an integer type (I1 or I64).
func (t Type) IsInt() bool { return t == I1 || t == I64 }

// IsFloat reports whether t is the floating-point type.
func (t Type) IsFloat() bool { return t == F64 }

// Bits returns the number of bits a fault injector may flip in a value of
// type t. I1 values expose a single bit; everything else is a full word.
func (t Type) Bits() uint {
	if t == I1 {
		return 1
	}
	return 64
}
