package ir

import "fmt"

// Op is an IR opcode.
type Op uint8

// The instruction set. It mirrors the LLVM subset used by IR-level fault
// injection studies: integer and floating arithmetic, comparisons,
// conversions, memory operations, control flow, calls, and the detector
// instruction inserted by the selective-duplication transform.
const (
	// Integer arithmetic (i64).
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv // signed division; traps on divide-by-zero and INT64_MIN / -1
	OpRem // signed remainder; traps like OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // arithmetic shift right

	// Floating arithmetic (f64).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons; the predicate lives in Instr.Pred.
	OpICmp
	OpFCmp

	// Conversions.
	OpIToF // signed i64 -> f64
	OpFToI // f64 -> signed i64 (truncating; traps on NaN/overflow)

	// Memory.
	OpAlloca     // alloca <count-words> -> ptr (stack)
	OpLoad       // load ptr -> value
	OpStore      // store value, ptr
	OpGEP        // gep ptr, i64 -> ptr (word-granular element step)
	OpGlobalAddr // address of module global -> ptr
	OpArrayLen   // runtime length (in words) of a module global -> i64

	// Control flow.
	OpBr     // unconditional branch
	OpCondBr // conditional branch: i1, then-block, else-block
	OpRet    // return [value]
	OpPhi    // SSA phi; incoming values parallel Instr.Succs block list

	// Calls.
	OpCall  // direct call to a module function
	OpCallB // call to a runtime builtin (math, output, ...)

	// Misc value ops.
	OpSelect // select i1, a, b -> a or b

	// Threads (deterministically scheduled by the interpreter).
	OpSpawn // spawn a module function on a new simulated thread
	OpJoin  // wait for all spawned threads

	// Fault detection, inserted by the duplication transform: if the i1
	// operand is false the program halts with a Detected outcome.
	OpDetect

	numOps
)

// Pred is a comparison predicate shared by OpICmp (signed) and OpFCmp
// (ordered).
type Pred uint8

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

// String returns the textual predicate ("eq", "lt", ...).
func (p Pred) String() string {
	switch p {
	case PredEQ:
		return "eq"
	case PredNE:
		return "ne"
	case PredLT:
		return "lt"
	case PredLE:
		return "le"
	case PredGT:
		return "gt"
	case PredGE:
		return "ge"
	default:
		return fmt.Sprintf("pred(%d)", uint8(p))
	}
}

var opNames = [numOps]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpIToF: "itof", OpFToI: "ftoi",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpGlobalAddr: "gaddr", OpArrayLen: "alen",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpPhi: "phi",
	OpCall: "call", OpCallB: "callb",
	OpSelect: "select",
	OpSpawn:  "spawn", OpJoin: "join",
	OpDetect: "detect",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether o must appear as the final instruction of a
// basic block.
func (o Op) IsTerminator() bool {
	return o == OpBr || o == OpCondBr || o == OpRet
}

// HasResult reports whether o produces a value (and therefore occupies a
// destination register and is a candidate fault-injection site).
func (o Op) HasResult() bool {
	switch o {
	case OpStore, OpBr, OpCondBr, OpRet, OpSpawn, OpJoin, OpDetect:
		return false
	case OpCall, OpCallB:
		// Determined by the callee's return type; the instruction's Type
		// field is Void for value-less calls. Treated as "maybe" here;
		// Instr.HasResult gives the precise answer.
		return true
	default:
		return true
	}
}

// opCycles is the latency model used by the profiler: approximate issue
// latencies, in cycles, for a simple in-order core. The absolute values
// only matter relative to each other (SID costs are cycle fractions).
var opCycles = [numOps]int64{
	OpAdd: 1, OpSub: 1, OpMul: 3, OpDiv: 24, OpRem: 24,
	OpAnd: 1, OpOr: 1, OpXor: 1, OpShl: 1, OpShr: 1,
	OpFAdd: 3, OpFSub: 3, OpFMul: 4, OpFDiv: 22,
	OpICmp: 1, OpFCmp: 2,
	OpIToF: 4, OpFToI: 4,
	OpAlloca: 1, OpLoad: 4, OpStore: 4, OpGEP: 1,
	OpGlobalAddr: 1, OpArrayLen: 1,
	OpBr: 1, OpCondBr: 1, OpRet: 1, OpPhi: 1,
	OpCall: 2, OpCallB: 10,
	OpSelect: 1,
	OpSpawn:  50, OpJoin: 50,
	OpDetect: 1,
}

// Cycles returns the modeled latency of o in cycles.
func (o Op) Cycles() int64 {
	if int(o) < len(opCycles) {
		return opCycles[o]
	}
	return 1
}

// Builtin identifies a runtime-provided function callable through OpCallB.
type Builtin uint8

// The builtin set: math routines the HPC kernels need plus the output
// primitives that define a program's observable result (the values the
// SDC classifier compares bit-for-bit against a golden run).
const (
	BuiltinEmitI Builtin = iota // emiti(i64): append to program output
	BuiltinEmitF                // emitf(f64): append to program output
	BuiltinSqrt
	BuiltinFabs
	BuiltinExp
	BuiltinLog
	BuiltinSin
	BuiltinCos
	BuiltinPow
	BuiltinFloor
	BuiltinIAbs

	numBuiltins
)

// BuiltinSig describes a builtin's signature.
type BuiltinSig struct {
	Name   string
	Params []Type
	Ret    Type
}

var builtinSigs = [numBuiltins]BuiltinSig{
	BuiltinEmitI: {"emiti", []Type{I64}, Void},
	BuiltinEmitF: {"emitf", []Type{F64}, Void},
	BuiltinSqrt:  {"sqrt", []Type{F64}, F64},
	BuiltinFabs:  {"fabs", []Type{F64}, F64},
	BuiltinExp:   {"exp", []Type{F64}, F64},
	BuiltinLog:   {"log", []Type{F64}, F64},
	BuiltinSin:   {"sin", []Type{F64}, F64},
	BuiltinCos:   {"cos", []Type{F64}, F64},
	BuiltinPow:   {"pow", []Type{F64, F64}, F64},
	BuiltinFloor: {"floor", []Type{F64}, F64},
	BuiltinIAbs:  {"iabs", []Type{I64}, I64},
}

// Sig returns the signature of b.
func (b Builtin) Sig() BuiltinSig { return builtinSigs[b] }

// String returns the builtin's name.
func (b Builtin) String() string { return builtinSigs[b].Name }

// LookupBuiltin resolves a builtin by name. The second result reports
// whether the name is known.
func LookupBuiltin(name string) (Builtin, bool) {
	for b := Builtin(0); b < numBuiltins; b++ {
		if builtinSigs[b].Name == name {
			return b, true
		}
	}
	return 0, false
}

// NumBuiltins returns the number of runtime builtins.
func NumBuiltins() int { return int(numBuiltins) }
