package ir

import "fmt"

// Verify checks structural well-formedness of the module: every block ends
// in exactly one terminator, operand registers are within the function's
// register file, branch targets and callee/global/builtin indices are
// valid, operand counts match opcodes, and result types are sane.
//
// It returns the first problem found, or nil. Verify requires Finalize to
// have been called (it relies on instruction IDs for error messages).
//
// Verify is purely local: it never reasons about dominance. For the
// stronger SSA-dominance check see VerifyStrict.
func Verify(m *Module) error {
	if m.Entry() < 0 {
		return fmt.Errorf("module %s: no entry function %q", m.Name, "main")
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("func %s: no blocks", f.Name)
		}
		if f.NumRegs < len(f.Params) {
			return fmt.Errorf("func %s: NumRegs %d < params %d", f.Name, f.NumRegs, len(f.Params))
		}
		for _, b := range f.Blocks {
			if err := verifyBlock(m, f, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func verifyBlock(m *Module, f *Function, b *Block) error {
	if len(b.Instrs) == 0 {
		return fmt.Errorf("func %s bb%d: empty block", f.Name, b.Index)
	}
	for i, in := range b.Instrs {
		last := i == len(b.Instrs)-1
		if in.Op.IsTerminator() != last {
			if last {
				return fmt.Errorf("func %s bb%d pos %d: missing terminator (ends with %s)", f.Name, b.Index, i, in.Op)
			}
			return fmt.Errorf("func %s bb%d pos %d: terminator %s not at block end", f.Name, b.Index, i, in.Op)
		}
		if err := verifyInstr(m, f, b, i, in); err != nil {
			return err
		}
	}
	return nil
}

func verifyInstr(m *Module, f *Function, b *Block, pos int, in *Instr) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("func %s bb%d pos %d [%d] %s: %s", f.Name, b.Index, pos, in.ID, in.Op, fmt.Sprintf(format, args...))
	}
	// Registers in range.
	if in.Dst >= f.NumRegs {
		return fail("dst register %d out of range (NumRegs=%d)", in.Dst, f.NumRegs)
	}
	// HasResult() is Dst >= 0 && Type != Void, so testing it here would be
	// vacuous; the broken state is a typed instruction lacking a register.
	if in.Type != Void && in.Dst < 0 {
		return fail("typed result without destination register")
	}
	for _, a := range in.Args {
		if a.Kind == OperReg && (a.Reg < 0 || a.Reg >= f.NumRegs) {
			return fail("operand register %d out of range (NumRegs=%d)", a.Reg, f.NumRegs)
		}
		if a.Kind == OperNone {
			return fail("missing operand")
		}
	}
	// Successor blocks valid.
	for _, s := range in.Succs {
		if s < 0 || s >= len(f.Blocks) {
			return fail("successor bb%d out of range", s)
		}
	}

	argc := func(n int) error {
		if len(in.Args) != n {
			return fail("want %d operands, have %d", n, len(in.Args))
		}
		return nil
	}

	switch in.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
		if err := argc(2); err != nil {
			return err
		}
		if in.Type != I64 {
			return fail("integer op result must be i64, got %s", in.Type)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if err := argc(2); err != nil {
			return err
		}
		if in.Type != F64 {
			return fail("float op result must be f64, got %s", in.Type)
		}
	case OpICmp, OpFCmp:
		if err := argc(2); err != nil {
			return err
		}
		if in.Type != I1 {
			return fail("comparison result must be i1, got %s", in.Type)
		}
	case OpIToF:
		if err := argc(1); err != nil {
			return err
		}
		if in.Type != F64 {
			return fail("itof result must be f64")
		}
	case OpFToI:
		if err := argc(1); err != nil {
			return err
		}
		if in.Type != I64 {
			return fail("ftoi result must be i64")
		}
	case OpAlloca:
		if err := argc(1); err != nil {
			return err
		}
		if in.Type != Ptr {
			return fail("alloca result must be ptr")
		}
	case OpLoad:
		if err := argc(1); err != nil {
			return err
		}
		if in.Type == Void {
			return fail("load must have a result type")
		}
	case OpStore:
		if err := argc(2); err != nil {
			return err
		}
	case OpGEP:
		if err := argc(2); err != nil {
			return err
		}
		if in.Type != Ptr {
			return fail("gep result must be ptr")
		}
	case OpGlobalAddr, OpArrayLen:
		if in.Global < 0 || in.Global >= len(m.Globals) {
			return fail("global index %d out of range", in.Global)
		}
	case OpBr:
		if len(in.Succs) != 1 {
			return fail("br needs 1 successor, have %d", len(in.Succs))
		}
	case OpCondBr:
		if err := argc(1); err != nil {
			return err
		}
		if len(in.Succs) != 2 {
			return fail("condbr needs 2 successors, have %d", len(in.Succs))
		}
		if in.Args[0].Type != I1 {
			return fail("condbr condition must be i1")
		}
	case OpRet:
		if f.Ret == Void && len(in.Args) != 0 {
			return fail("void function returns a value")
		}
		if f.Ret != Void && len(in.Args) != 1 {
			return fail("non-void function must return exactly one value")
		}
	case OpPhi:
		if len(in.Args) == 0 || len(in.Args) != len(in.Succs) {
			return fail("phi incoming values (%d) and blocks (%d) mismatch", len(in.Args), len(in.Succs))
		}
	case OpCall, OpSpawn:
		if in.Callee < 0 || in.Callee >= len(m.Funcs) {
			return fail("callee fn%d out of range", in.Callee)
		}
		callee := m.Funcs[in.Callee]
		if len(in.Args) != len(callee.Params) {
			return fail("call to %s: want %d args, have %d", callee.Name, len(callee.Params), len(in.Args))
		}
		if in.Op == OpCall && in.Type != callee.Ret {
			return fail("call result type %s != callee return %s", in.Type, callee.Ret)
		}
	case OpCallB:
		if int(in.BFunc) >= NumBuiltins() {
			return fail("builtin %d out of range", in.BFunc)
		}
		sig := in.BFunc.Sig()
		if len(in.Args) != len(sig.Params) {
			return fail("builtin %s: want %d args, have %d", sig.Name, len(sig.Params), len(in.Args))
		}
		if in.Type != sig.Ret {
			return fail("builtin %s result type %s != %s", sig.Name, in.Type, sig.Ret)
		}
	case OpSelect:
		if err := argc(3); err != nil {
			return err
		}
		if in.Args[0].Type != I1 {
			return fail("select condition must be i1")
		}
	case OpJoin:
		if err := argc(0); err != nil {
			return err
		}
	case OpDetect:
		if err := argc(1); err != nil {
			return err
		}
		if in.Args[0].Type != I1 {
			return fail("detect operand must be i1")
		}
	default:
		return fail("unknown opcode")
	}
	return nil
}

// strictSSA is the pluggable dominance checker. The analysis package
// registers its SSA verifier here from an init function, keeping the
// dependency edge pointing from analysis to ir (ir stays leaf-level).
var strictSSA func(*Module) error

// RegisterStrictSSA installs the dominance checker used by VerifyStrict.
// It is called once, from package analysis's init; later registrations
// overwrite earlier ones.
func RegisterStrictSSA(f func(*Module) error) { strictSSA = f }

// VerifyStrict runs Verify and then, when a dominance checker has been
// registered (importing repro/internal/analysis registers one), the
// strict SSA-dominance check: single assignment per register and every
// use dominated by its definition. Without a registered checker it is
// identical to Verify.
func VerifyStrict(m *Module) error {
	if err := Verify(m); err != nil {
		return err
	}
	if strictSSA != nil {
		return strictSSA(m)
	}
	return nil
}
