package ir

import (
	"testing"
)

// loopFunc emits a function with two sequential counted loops, each with
// enough body instructions to clear the subdivision threshold. mul
// selects a constant used in the second loop body so tests can produce
// two variants differing only inside that loop.
func loopFunc(m *Module, name string, mul int64) *Function {
	f := m.AddFunction(name, []Type{I64}, I64)
	b := NewBuilder(m, f)
	n := Reg(0, I64)

	head1 := b.NewBlock("head1")
	body1 := b.NewBlock("body1")
	head2 := b.NewBlock("head2")
	body2 := b.NewBlock("body2")
	exit := b.NewBlock("exit")

	// entry: pad with straight-line work so the function crosses the
	// subdivision threshold even with small loop bodies.
	var acc Operand = ConstI(0)
	for i := 0; i < 8; i++ {
		acc = b.Bin(OpAdd, acc, ConstI(int64(i)))
	}
	b.Br(head1)

	b.SetBlock(head1)
	i1 := b.Phi(I64, []Operand{ConstI(0), {}}, []*Block{b.Fn.Blocks[0], body1})
	s1 := b.Phi(I64, []Operand{acc, {}}, []*Block{b.Fn.Blocks[0], body1})
	c1 := b.ICmp(PredLT, i1, n)
	b.CondBr(c1, body1, head2)

	b.SetBlock(body1)
	s1n := b.Bin(OpAdd, s1, i1)
	s1n = b.Bin(OpXor, s1n, ConstI(3))
	i1n := b.Bin(OpAdd, i1, ConstI(1))
	b.Br(head1)
	patchPhi(head1, 0, i1n, body1)
	patchPhi(head1, 1, s1n, body1)

	b.SetBlock(head2)
	i2 := b.Phi(I64, []Operand{ConstI(0), {}}, []*Block{head1, body2})
	s2 := b.Phi(I64, []Operand{s1, {}}, []*Block{head1, body2})
	c2 := b.ICmp(PredLT, i2, n)
	b.CondBr(c2, body2, exit)

	b.SetBlock(body2)
	s2n := b.Bin(OpMul, s2, ConstI(mul))
	s2n = b.Bin(OpAdd, s2n, i2)
	i2n := b.Bin(OpAdd, i2, ConstI(1))
	b.Br(head2)
	patchPhi(head2, 0, i2n, body2)
	patchPhi(head2, 1, s2n, body2)

	b.SetBlock(exit)
	b.Ret(s2)
	return f
}

// patchPhi fills in the loop-carried operand of the idx-th phi of blk.
func patchPhi(blk *Block, idx int, val Operand, from *Block) {
	phi := blk.Instrs[idx]
	for i, s := range phi.Succs {
		if s == from.Index {
			phi.Args[i] = val
		}
	}
}

// smallFunc emits a tiny straight-line function (below the threshold).
func smallFunc(m *Module, name string) {
	f := m.AddFunction(name, []Type{I64}, I64)
	b := NewBuilder(m, f)
	x := b.Bin(OpAdd, Reg(0, I64), ConstI(7))
	b.Ret(x)
}

func sectionMod(t *testing.T, build func(m *Module)) *Module {
	t.Helper()
	m := NewModule("sectest")
	build(m)
	m.Finalize()
	if err := Verify(m); err != nil {
		t.Fatalf("module does not verify: %v", err)
	}
	return m
}

func TestPartitionTotalAndDisjoint(t *testing.T) {
	m := sectionMod(t, func(m *Module) {
		smallFunc(m, "main")
		loopFunc(m, "loopy", 5)
	})
	ss := PartitionSections(m)
	seen := make(map[int]int)
	for _, sec := range ss.Sections {
		for _, id := range sec.Instrs {
			if prev, dup := seen[id]; dup {
				t.Fatalf("instr %d in sections %d and %d", id, prev, sec.Index)
			}
			seen[id] = sec.Index
			if ss.SectionOf(id) != sec.Index {
				t.Fatalf("SectionOf(%d) = %d, want %d", id, ss.SectionOf(id), sec.Index)
			}
		}
	}
	if len(seen) != m.NumInstrs() {
		t.Fatalf("partition covers %d of %d instrs", len(seen), m.NumInstrs())
	}
	// Memoization: same snapshot returns the same partition.
	if PartitionSections(m) != ss {
		t.Fatal("partition not memoized per (module, version)")
	}
}

func TestPartitionSubdividesLoops(t *testing.T) {
	m := sectionMod(t, func(m *Module) { smallFunc(m, "main"); loopFunc(m, "loopy", 5) })
	ss := PartitionSections(m)
	var loops, bodies int
	for _, sec := range ss.Sections {
		switch sec.Kind {
		case SectionLoop:
			loops++
		case SectionBody:
			bodies++
		}
	}
	if loops != 2 || bodies != 1 {
		for _, sec := range ss.Sections {
			t.Logf("section %s kind=%s blocks=%v", sec.Name(), sec.Kind, sec.Blocks)
		}
		t.Fatalf("got %d loop + %d body sections, want 2 + 1", loops, bodies)
	}
	// A small function never subdivides.
	m2 := sectionMod(t, func(m *Module) { smallFunc(m, "main") })
	ss2 := PartitionSections(m2)
	if len(ss2.Sections) != 1 || ss2.Sections[0].Kind != SectionFunc {
		t.Fatalf("small function partitioned into %d sections", len(ss2.Sections))
	}
}

// TestSectionHashStability is the incremental contract: editing one
// loop's body changes exactly that section's hash, and renumbering the
// module by adding an unrelated function changes no hash at all.
func TestSectionHashStability(t *testing.T) {
	base := sectionMod(t, func(m *Module) {
		smallFunc(m, "main")
		loopFunc(m, "loopy", 5)
	})
	edited := sectionMod(t, func(m *Module) {
		smallFunc(m, "main")
		loopFunc(m, "loopy", 9) // differs only inside loop 2's body
	})
	bs, es := PartitionSections(base), PartitionSections(edited)
	if len(bs.Sections) != len(es.Sections) {
		t.Fatalf("partition shape changed: %d vs %d sections", len(bs.Sections), len(es.Sections))
	}
	var changed []string
	for i := range bs.Sections {
		b, e := bs.Sections[i], es.Sections[i]
		if b.Name() != e.Name() {
			t.Fatalf("section %d renamed: %s vs %s", i, b.Name(), e.Name())
		}
		if b.Hash != e.Hash {
			changed = append(changed, b.Name())
		}
	}
	if len(changed) != 1 || changed[0] != "loopy#loop2" {
		t.Fatalf("changed sections = %v, want exactly [loopy#loop2]", changed)
	}

	// Prepending a function shifts every module-wide instruction ID; the
	// canonical hashes must not notice.
	shifted := sectionMod(t, func(m *Module) {
		smallFunc(m, "extra")
		smallFunc(m, "main")
		loopFunc(m, "loopy", 5)
	})
	sh := PartitionSections(shifted)
	byName := make(map[string][32]byte)
	for _, sec := range sh.Sections {
		byName[sec.Name()] = sec.Hash
	}
	for _, sec := range bs.Sections {
		got, ok := byName[sec.Name()]
		if !ok {
			t.Fatalf("section %s missing after renumbering", sec.Name())
		}
		if got != sec.Hash {
			t.Fatalf("section %s hash changed after ID renumbering", sec.Name())
		}
	}
}

func TestFuncSections(t *testing.T) {
	m := sectionMod(t, func(m *Module) {
		smallFunc(m, "main")
		loopFunc(m, "loopy", 5)
	})
	ss := PartitionSections(m)
	if got := ss.FuncSections(0); len(got) != 1 {
		t.Fatalf("tiny has %d sections, want 1", len(got))
	}
	loopy := ss.FuncSections(1)
	if len(loopy) != 3 {
		t.Fatalf("loopy has %d sections, want 3", len(loopy))
	}
	for i, si := range loopy {
		sec := ss.Sections[si]
		if sec.SecIdx != i {
			t.Fatalf("section %s has SecIdx %d, want %d", sec.Name(), sec.SecIdx, i)
		}
	}
}
