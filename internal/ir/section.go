package ir

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
)

// This file implements the stable section partitioner behind the
// compositional (FastFlip-style) campaign pipeline: every function is
// split into sections — whole small functions, and loop regions plus the
// residual body for large ones — and every section carries a canonical
// content hash that is independent of module-wide instruction numbering.
// An edit therefore changes exactly the hashes of the sections whose
// instructions it touches, which is what lets the artifact store reuse
// per-section campaign results across edits (DESIGN.md §13).

// SectionKind classifies a section of the partition.
type SectionKind uint8

const (
	// SectionFunc covers a whole function that was not subdivided.
	SectionFunc SectionKind = iota
	// SectionLoop covers one natural-loop region of a large function.
	SectionLoop
	// SectionBody covers the non-loop remainder of a subdivided function.
	SectionBody
)

// String returns the kind name used in reports.
func (k SectionKind) String() string {
	switch k {
	case SectionLoop:
		return "loop"
	case SectionBody:
		return "body"
	default:
		return "func"
	}
}

// LoopSectionMinInstrs is the subdivision threshold: functions with at
// least this many static instructions are split into loop regions (when
// they have any back edge) so an edit inside one loop does not invalidate
// the rest of the function.
const LoopSectionMinInstrs = 24

// Section is one element of a module's partition: a set of whole basic
// blocks of a single function. Sections never span functions and every
// block belongs to exactly one section.
type Section struct {
	Index    int    // position in SectionSet.Sections
	Func     int    // function index
	FuncName string // function name (part of the canonical identity)
	SecIdx   int    // ordinal within the function
	Kind     SectionKind
	Blocks   []int // block indices within Func, ascending
	Instrs   []int // module-wide static instruction IDs, ascending
	// Hash is the canonical content hash of the section: function name,
	// signature, register-file size, and the ID-free rendering of every
	// instruction in every member block. Module-wide instruction IDs are
	// deliberately excluded so an edit elsewhere in the module cannot
	// change the hash of an untouched section.
	Hash [sha256.Size]byte
}

// Name returns the stable human-readable section name ("fn", "fn#loopN",
// or "fn#body").
func (s *Section) Name() string {
	switch s.Kind {
	case SectionLoop:
		return fmt.Sprintf("%s#loop%d", s.FuncName, s.SecIdx)
	case SectionBody:
		return s.FuncName + "#body"
	default:
		return s.FuncName
	}
}

// SectionSet is the partition of one module snapshot.
type SectionSet struct {
	Mod      *Module
	Sections []*Section
	byInstr  []int // instr ID -> section index (total: every ID maps)
}

// SectionOf returns the index of the section containing static
// instruction id.
func (ss *SectionSet) SectionOf(id int) int { return ss.byInstr[id] }

// FuncSections returns the indices of function fi's sections, in order.
func (ss *SectionSet) FuncSections(fi int) []int {
	var out []int
	for _, s := range ss.Sections {
		if s.Func == fi {
			out = append(out, s.Index)
		}
	}
	return out
}

// sectionKey pins a partition to one immutable module snapshot, the same
// (pointer, version) identity the triage and image caches use.
type sectionKey struct {
	mod     *Module
	version uint64
}

var sectionCache sync.Map // sectionKey -> *SectionSet

// PartitionSections returns the memoized section partition of m's current
// finalized snapshot, computing it on first use.
func PartitionSections(m *Module) *SectionSet {
	key := sectionKey{mod: m, version: m.version}
	if v, ok := sectionCache.Load(key); ok {
		return v.(*SectionSet)
	}
	ss := partition(m)
	actual, _ := sectionCache.LoadOrStore(key, ss)
	return actual.(*SectionSet)
}

// partition computes the section partition of m.
func partition(m *Module) *SectionSet {
	ss := &SectionSet{Mod: m, byInstr: make([]int, len(m.Instrs))}
	for fi, f := range m.Funcs {
		for _, blocks := range splitFunc(f) {
			sec := &Section{
				Index:    len(ss.Sections),
				Func:     fi,
				FuncName: f.Name,
				Blocks:   blocks,
			}
			for _, bi := range blocks {
				for _, in := range f.Blocks[bi].Instrs {
					sec.Instrs = append(sec.Instrs, in.ID)
					ss.byInstr[in.ID] = sec.Index
				}
			}
			sort.Ints(sec.Instrs)
			ss.Sections = append(ss.Sections, sec)
		}
	}
	// Assign per-function ordinals and kinds, then hash. Kinds depend on
	// how many sections the function produced.
	perFunc := make(map[int][]*Section)
	for _, sec := range ss.Sections {
		perFunc[sec.Func] = append(perFunc[sec.Func], sec)
	}
	for fi, secs := range perFunc {
		f := m.Funcs[fi]
		for i, sec := range secs {
			sec.SecIdx = i
			switch {
			case len(secs) == 1:
				sec.Kind = SectionFunc
			case isLoopSection(f, sec.Blocks):
				sec.Kind = SectionLoop
			default:
				sec.Kind = SectionBody
			}
			sec.Hash = sectionHash(f, sec)
		}
	}
	return ss
}

// splitFunc partitions one function's blocks into section block lists,
// each ascending, ordered by smallest member block. Small functions and
// functions without back edges yield a single list of all blocks.
func splitFunc(f *Function) [][]int {
	n := len(f.Blocks)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	instrs := 0
	for _, b := range f.Blocks {
		instrs += len(b.Instrs)
	}
	if instrs < LoopSectionMinInstrs || n < 2 {
		return [][]int{all}
	}
	succs := make([][]int, n)
	preds := make([][]int, n)
	for i, b := range f.Blocks {
		if t := b.Terminator(); t != nil {
			succs[i] = t.Succs
		}
	}
	for from, ss := range succs {
		for _, to := range ss {
			preds[to] = append(preds[to], from)
		}
	}
	loops := findLoops(n, succs, preds)
	if len(loops) == 0 {
		return [][]int{all}
	}
	// Assign each block to the largest loop body containing it (the
	// outermost enclosing loop); ties break on the smaller header so the
	// assignment is deterministic.
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for li, lp := range loops {
		for b := range lp.body {
			if owner[b] == -1 ||
				len(loops[owner[b]].body) < len(lp.body) ||
				(len(loops[owner[b]].body) == len(lp.body) && lp.header < loops[owner[b]].header) {
				owner[b] = li
			}
		}
	}
	groups := make(map[int][]int) // owner (-1 = body) -> blocks
	for b := 0; b < n; b++ {
		groups[owner[b]] = append(groups[owner[b]], b)
	}
	var out [][]int
	for _, blocks := range groups {
		sort.Ints(blocks)
		out = append(out, blocks)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// loop is one natural loop: a back-edge header plus every block that can
// reach one of its back edges without leaving through the header.
type loop struct {
	header int
	body   map[int]bool
}

// findLoops detects natural loops from DFS back edges. It is
// self-contained (package ir cannot import the analysis framework) and
// purely structural, so the result is stable across edits to other
// functions.
func findLoops(n int, succs, preds [][]int) []loop {
	color := make([]uint8, n) // 0 white, 1 gray (on stack), 2 black
	type edge struct{ from, to int }
	var backs []edge
	type frame struct{ block, next int }
	stack := []frame{{0, 0}}
	color[0] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(succs[fr.block]) {
			s := succs[fr.block][fr.next]
			fr.next++
			switch color[s] {
			case 0:
				color[s] = 1
				stack = append(stack, frame{s, 0})
			case 1:
				backs = append(backs, edge{fr.block, s})
			}
			continue
		}
		color[fr.block] = 2
		stack = stack[:len(stack)-1]
	}
	byHeader := make(map[int]*loop)
	var headers []int
	for _, e := range backs {
		lp := byHeader[e.to]
		if lp == nil {
			lp = &loop{header: e.to, body: map[int]bool{e.to: true}}
			byHeader[e.to] = lp
			headers = append(headers, e.to)
		}
		// Backward walk from the latch, stopping at the header.
		work := []int{e.from}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if lp.body[b] {
				continue
			}
			lp.body[b] = true
			work = append(work, preds[b]...)
		}
	}
	sort.Ints(headers)
	out := make([]loop, 0, len(headers))
	for _, h := range headers {
		out = append(out, *byHeader[h])
	}
	return out
}

// isLoopSection reports whether the section's blocks contain a back edge
// internal to the section (distinguishing loop sections from the body
// remainder after subdivision).
func isLoopSection(f *Function, blocks []int) bool {
	in := make(map[int]bool, len(blocks))
	for _, b := range blocks {
		in[b] = true
	}
	// A loop section is one whose first block is the target of an edge
	// from inside the section (its back edge); the body remainder never
	// is, because loop headers own their loops.
	head := blocks[0]
	for _, b := range blocks {
		if t := f.Blocks[b].Terminator(); t != nil {
			for _, s := range t.Succs {
				if s == head && in[b] {
					return true
				}
			}
		}
	}
	return false
}

// sectionHash computes the canonical content hash of one section. The
// rendering is function-local: register numbers, block indices, callee
// and global indices, but never module-wide instruction IDs.
func sectionHash(f *Function, sec *Section) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "section/v1 %s idx=%d kind=%s\n", f.Name, sec.SecIdx, sec.Kind)
	fmt.Fprintf(h, "sig (")
	for i, p := range f.Params {
		if i > 0 {
			fmt.Fprint(h, ",")
		}
		fmt.Fprint(h, p.String())
	}
	fmt.Fprintf(h, ") %s regs=%d\n", f.Ret, f.NumRegs)
	for _, bi := range sec.Blocks {
		b := f.Blocks[bi]
		fmt.Fprintf(h, "bb%d %s\n", bi, b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(h, "  %s\n", in.String())
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
