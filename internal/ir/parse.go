package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual form produced by Module.String back into
// a Module. The result is finalized but not verified; callers that ingest
// untrusted text should run Verify.
//
// The format is line oriented:
//
//	module <name>
//	global @<name> size=<n> [init=<v>,<v>,...]
//	func @<name>(%r0:<type>, ...) <ret-type> {
//	bb<N>: ; <label>
//	  [ <id>] [%rN:<type> = ]<opcode> [qualifier] <operands> [-> bb<A> ...] [!dup] [; comment]
//	}
func ParseModule(text string) (*Module, error) {
	p := &irParser{lines: strings.Split(text, "\n")}
	return p.parse()
}

type irParser struct {
	lines []string
	pos   int
	mod   *Module
}

func (p *irParser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

// next returns the next non-empty line (trimmed), or "" at EOF.
func (p *irParser) next() string {
	for p.pos < len(p.lines) {
		ln := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if ln != "" {
			return ln
		}
	}
	return ""
}

// peek returns the next non-empty line without consuming it.
func (p *irParser) peek() string {
	save := p.pos
	ln := p.next()
	p.pos = save
	return ln
}

func (p *irParser) parse() (*Module, error) {
	head := p.next()
	if !strings.HasPrefix(head, "module ") {
		return nil, p.errf("expected 'module <name>', got %q", head)
	}
	p.mod = NewModule(strings.TrimSpace(strings.TrimPrefix(head, "module ")))

	for {
		ln := p.peek()
		switch {
		case strings.HasPrefix(ln, "global "):
			p.next()
			if err := p.parseGlobal(ln); err != nil {
				return nil, err
			}
		case strings.HasPrefix(ln, "func "):
			// First pass collects the function signature so calls can
			// reference later functions by index; bodies parse in order.
			if err := p.parseFunc(); err != nil {
				return nil, err
			}
		case ln == "":
			p.mod.Finalize()
			return p.mod, nil
		default:
			return nil, p.errf("unexpected line %q", ln)
		}
	}
}

func (p *irParser) parseGlobal(ln string) error {
	rest := strings.TrimPrefix(ln, "global ")
	fields := strings.Fields(rest)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
		return p.errf("malformed global %q", ln)
	}
	name := fields[0][1:]
	if !strings.HasPrefix(fields[1], "size=") {
		return p.errf("global %s: missing size", name)
	}
	size, err := strconv.Atoi(strings.TrimPrefix(fields[1], "size="))
	if err != nil {
		return p.errf("global %s: bad size: %v", name, err)
	}
	var init []uint64
	if len(fields) >= 3 && strings.HasPrefix(fields[2], "init=") {
		for _, tok := range strings.Split(strings.TrimPrefix(fields[2], "init="), ",") {
			v, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				return p.errf("global %s: bad init value %q", name, tok)
			}
			init = append(init, v)
		}
	}
	p.mod.AddGlobal(name, size, init)
	return nil
}

func parseType(s string) (Type, error) {
	switch s {
	case "void":
		return Void, nil
	case "i1":
		return I1, nil
	case "i64":
		return I64, nil
	case "f64":
		return F64, nil
	case "ptr":
		return Ptr, nil
	default:
		return Void, fmt.Errorf("unknown type %q", s)
	}
}

func (p *irParser) parseFunc() error {
	head := p.next() // "func @name(params) ret {"
	open := strings.Index(head, "(")
	close := strings.LastIndex(head, ")")
	if open < 0 || close < open || !strings.HasSuffix(head, "{") {
		return p.errf("malformed function header %q", head)
	}
	name := strings.TrimPrefix(head[:open], "func @")
	var params []Type
	if paramStr := strings.TrimSpace(head[open+1 : close]); paramStr != "" {
		for _, tok := range strings.Split(paramStr, ",") {
			tok = strings.TrimSpace(tok)
			colon := strings.LastIndex(tok, ":")
			if colon < 0 {
				return p.errf("malformed parameter %q", tok)
			}
			t, err := parseType(tok[colon+1:])
			if err != nil {
				return p.errf("parameter %q: %v", tok, err)
			}
			params = append(params, t)
		}
	}
	retStr := strings.TrimSpace(strings.TrimSuffix(head[close+1:], "{"))
	ret, err := parseType(retStr)
	if err != nil {
		return p.errf("return type: %v", err)
	}
	f := p.mod.AddFunction(name, params, ret)
	f.NumRegs = len(params)

	var cur *Block
	for {
		ln := p.next()
		switch {
		case ln == "}":
			if len(f.Blocks) == 0 {
				return p.errf("function %s has no blocks", name)
			}
			return nil
		case ln == "":
			return p.errf("unterminated function %s", name)
		case strings.HasPrefix(ln, "bb"):
			label := ""
			if i := strings.Index(ln, ";"); i >= 0 {
				label = strings.TrimSpace(ln[i+1:])
				ln = ln[:i]
			}
			idxStr := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(ln, "bb")), ":")
			idx, err := strconv.Atoi(idxStr)
			if err != nil || idx != len(f.Blocks) {
				return p.errf("blocks must appear in order; got %q", ln)
			}
			cur = &Block{Index: idx, Name: label}
			f.Blocks = append(f.Blocks, cur)
		default:
			if cur == nil {
				return p.errf("instruction before first block: %q", ln)
			}
			in, err := p.parseInstr(ln, f)
			if err != nil {
				return err
			}
			cur.Instrs = append(cur.Instrs, in)
		}
	}
}

// parseOperand parses "%rN:type" or "<value>:type".
func (p *irParser) parseOperand(tok string, f *Function) (Operand, error) {
	tok = strings.TrimSpace(tok)
	colon := strings.LastIndex(tok, ":")
	if colon < 0 {
		return Operand{}, p.errf("operand %q missing type", tok)
	}
	t, err := parseType(tok[colon+1:])
	if err != nil {
		return Operand{}, p.errf("operand %q: %v", tok, err)
	}
	val := tok[:colon]
	if strings.HasPrefix(val, "%r") {
		reg, err := strconv.Atoi(val[2:])
		if err != nil {
			return Operand{}, p.errf("bad register %q", val)
		}
		if reg >= f.NumRegs {
			f.NumRegs = reg + 1
		}
		return Operand{Kind: OperReg, Type: t, Reg: reg}, nil
	}
	if t == F64 {
		fv, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return Operand{}, p.errf("bad float constant %q", val)
		}
		return Operand{Kind: OperConstF, Type: t, FImm: fv}, nil
	}
	iv, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return Operand{}, p.errf("bad integer constant %q", val)
	}
	return Operand{Kind: OperConst, Type: t, Imm: iv}, nil
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

var predByName = map[string]Pred{
	"eq": PredEQ, "ne": PredNE, "lt": PredLT,
	"le": PredLE, "gt": PredGT, "ge": PredGE,
}

func (p *irParser) parseInstr(ln string, f *Function) (*Instr, error) {
	// Strip the "[ id]" prefix and any trailing comment.
	if strings.HasPrefix(ln, "[") {
		end := strings.Index(ln, "]")
		if end < 0 {
			return nil, p.errf("malformed instruction id in %q", ln)
		}
		ln = strings.TrimSpace(ln[end+1:])
	}
	comment := ""
	if i := strings.Index(ln, ";"); i >= 0 {
		comment = strings.TrimSpace(ln[i+1:])
		ln = strings.TrimSpace(ln[:i])
	}

	in := &Instr{Dst: -1, Type: Void, Comment: comment}

	// Result destination: "%rN:type = ...".
	if strings.HasPrefix(ln, "%r") {
		eq := strings.Index(ln, "=")
		if eq < 0 {
			return nil, p.errf("result register without '=' in %q", ln)
		}
		dst, err := p.parseOperand(ln[:eq], f)
		if err != nil {
			return nil, err
		}
		if dst.Kind != OperReg {
			return nil, p.errf("destination is not a register in %q", ln)
		}
		in.Dst = dst.Reg
		in.Type = dst.Type
		ln = strings.TrimSpace(ln[eq+1:])
	}

	// "!dup" marker.
	if strings.HasSuffix(ln, "!dup") {
		in.Dup = true
		ln = strings.TrimSpace(strings.TrimSuffix(ln, "!dup"))
	}

	// Successor blocks: "-> bbA bbB".
	if i := strings.Index(ln, "->"); i >= 0 {
		for _, tok := range strings.Fields(ln[i+2:]) {
			b, err := strconv.Atoi(strings.TrimPrefix(tok, "bb"))
			if err != nil {
				return nil, p.errf("bad successor %q", tok)
			}
			in.Succs = append(in.Succs, b)
		}
		ln = strings.TrimSpace(ln[:i])
	}

	fields := strings.Fields(ln)
	if len(fields) == 0 {
		return nil, p.errf("empty instruction")
	}
	op, ok := opByName[fields[0]]
	if !ok {
		return nil, p.errf("unknown opcode %q", fields[0])
	}
	in.Op = op
	rest := strings.TrimSpace(strings.TrimPrefix(ln, fields[0]))

	// Opcode qualifiers.
	switch op {
	case OpICmp, OpFCmp:
		fs := strings.Fields(rest)
		if len(fs) == 0 {
			return nil, p.errf("%s missing predicate", op)
		}
		pred, ok := predByName[fs[0]]
		if !ok {
			return nil, p.errf("unknown predicate %q", fs[0])
		}
		in.Pred = pred
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fs[0]))
	case OpCallB:
		fs := strings.Fields(rest)
		if len(fs) == 0 || !strings.HasPrefix(fs[0], "@") {
			return nil, p.errf("callb missing builtin")
		}
		b, ok := LookupBuiltin(fs[0][1:])
		if !ok {
			return nil, p.errf("unknown builtin %q", fs[0])
		}
		in.BFunc = b
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fs[0]))
	case OpCall, OpSpawn:
		fs := strings.Fields(rest)
		if len(fs) == 0 || !strings.HasPrefix(fs[0], "fn") {
			return nil, p.errf("call missing callee")
		}
		idx, err := strconv.Atoi(fs[0][2:])
		if err != nil {
			return nil, p.errf("bad callee %q", fs[0])
		}
		in.Callee = idx
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fs[0]))
	case OpGlobalAddr, OpArrayLen:
		fs := strings.Fields(rest)
		if len(fs) == 0 || !strings.HasPrefix(fs[0], "@g") {
			return nil, p.errf("%s missing global", op)
		}
		idx, err := strconv.Atoi(fs[0][2:])
		if err != nil {
			return nil, p.errf("bad global ref %q", fs[0])
		}
		in.Global = idx
		rest = strings.TrimSpace(strings.TrimPrefix(rest, fs[0]))
	}

	// Operands (comma separated).
	if rest != "" {
		for _, tok := range strings.Split(rest, ",") {
			o, err := p.parseOperand(tok, f)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, o)
		}
	}
	if in.Dst >= f.NumRegs {
		f.NumRegs = in.Dst + 1
	}
	return in, nil
}
