package ir

import (
	"strings"
	"testing"
)

func TestParseModuleRoundTrip(t *testing.T) {
	m := sumModule(t)
	text := m.String()
	parsed, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if err := Verify(parsed); err != nil {
		t.Fatalf("Verify(parsed): %v", err)
	}
	if got := parsed.String(); got != text {
		t.Fatalf("round trip changed text:\n--- original ---\n%s\n--- reparsed ---\n%s", text, got)
	}
}

func TestParseModuleWithGlobalsAndFeatures(t *testing.T) {
	m := NewModule("feat")
	m.AddGlobal("dyn", -1, nil)
	m.AddGlobal("tbl", 3, []uint64{1, 2, 3})
	mainF := m.AddFunction("main", []Type{I64, F64}, Void)
	auxF := m.AddFunction("aux", []Type{F64}, F64)

	b := NewBuilder(m, mainF)
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	merge := b.NewBlock("merge")
	g := b.GlobalAddr(0)
	n := b.ArrayLen(0)
	v := b.Load(I64, b.GEP(g, ConstI(0)))
	c := b.ICmp(PredGT, v, n)
	b.CondBr(c, thenB, elseB)
	b.SetBlock(thenB)
	b.Br(merge)
	b.SetBlock(elseB)
	b.Br(merge)
	b.SetBlock(merge)
	ph := b.Phi(F64, []Operand{ConstF(1.5), ConstF(-2.25)}, []*Block{thenB, elseB})
	r := b.Call(auxF.Index, F64, ph)
	b.CallB(BuiltinEmitF, r)
	sel := b.Select(c, ConstI(1), ConstI(0))
	b.CallB(BuiltinEmitI, sel)
	b.Spawn(auxF.Index, ConstF(0))
	b.Join()
	dup := &Instr{Op: OpFAdd, Type: F64, Dst: b.NewReg(), Args: []Operand{ConstF(1), ConstF(2)}, Dup: true, Comment: "dup"}
	merge.Instrs = append(merge.Instrs, dup)
	cm := b.FCmp(PredEQ, Reg(dup.Dst, F64), Reg(dup.Dst, F64))
	b.Detect(cm)
	b.RetVoid()

	ab := NewBuilder(m, auxF)
	ab.Ret(ab.Bin(OpFMul, Reg(0, F64), ConstF(2)))
	m.Finalize()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify(original): %v", err)
	}

	text := m.String()
	parsed, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v\n%s", err, text)
	}
	if err := Verify(parsed); err != nil {
		t.Fatalf("Verify(parsed): %v", err)
	}
	if got := parsed.String(); got != text {
		t.Fatalf("round trip changed text:\n--- original ---\n%s\n--- reparsed ---\n%s", text, got)
	}

	// Structure preserved.
	if len(parsed.Globals) != 2 || parsed.Globals[0].Size != -1 || parsed.Globals[1].Init[2] != 3 {
		t.Fatalf("globals not preserved: %+v", parsed.Globals)
	}
	dupCount := 0
	for _, in := range parsed.Instrs {
		if in.Dup {
			dupCount++
		}
	}
	if dupCount != 1 {
		t.Fatalf("dup markers not preserved: %d", dupCount)
	}
}

func TestParseModuleErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no-module", "func @main() void {\nbb0:\n  ret\n}"},
		{"bad-global", "module m\nglobal wall\nfunc @main() void {\nbb0:\n  ret\n}"},
		{"bad-opcode", "module m\nfunc @main() void {\nbb0:\n  frobnicate\n}"},
		{"bad-type", "module m\nfunc @main(%r0:i17) void {\nbb0:\n  ret\n}"},
		{"unterminated", "module m\nfunc @main() void {\nbb0:\n  ret"},
		{"block-order", "module m\nfunc @main() void {\nbb1:\n  ret\n}"},
		{"bad-operand", "module m\nfunc @main() void {\nbb0:\n  %r0:i64 = add 1:i64, bogus\n}"},
		{"bad-pred", "module m\nfunc @main() void {\nbb0:\n  %r0:i1 = icmp zz 1:i64, 2:i64\n}"},
		{"bad-builtin", "module m\nfunc @main() void {\nbb0:\n  callb @nothing 1:i64\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseModule(tc.text); err == nil {
				t.Errorf("parsed invalid text")
			}
		})
	}
}

func TestParseMinimalModule(t *testing.T) {
	text := strings.Join([]string{
		"module tiny",
		"func @main() void {",
		"bb0: ; entry",
		"  [   0] %r0:i64 = add 1:i64, 2:i64",
		"  [   1] callb @emiti %r0:i64",
		"  [   2] ret",
		"}",
	}, "\n")
	m, err := ParseModule(text)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.NumInstrs() != 3 {
		t.Fatalf("instrs = %d", m.NumInstrs())
	}
	if m.Funcs[0].NumRegs != 1 {
		t.Fatalf("NumRegs = %d, want 1", m.Funcs[0].NumRegs)
	}
}

// Round-trip property over all built-in shapes: parse(print(m)) prints
// identically and executes identically is covered in benchprog tests; here
// we additionally fuzz small operand encodings.
func TestOperandRoundTrip(t *testing.T) {
	f := &Function{NumRegs: 10}
	p := &irParser{}
	cases := []Operand{
		ConstI(0), ConstI(-5), ConstI(1 << 40),
		ConstB(true), ConstB(false),
		ConstF(0), ConstF(-2.75), ConstF(1e100), ConstF(3),
		Reg(0, I64), Reg(7, F64), Reg(3, Ptr), Reg(2, I1),
		{Kind: OperConst, Type: Ptr, Imm: 1234},
	}
	for _, o := range cases {
		got, err := p.parseOperand(o.String(), f)
		if err != nil {
			t.Errorf("parseOperand(%q): %v", o.String(), err)
			continue
		}
		if got != o {
			t.Errorf("round trip %q: got %+v, want %+v", o.String(), got, o)
		}
	}
}
