package ir

import (
	"fmt"
	"strings"
)

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Blocks are identified by their index within the function.
type Block struct {
	Index  int
	Name   string
	Instrs []*Instr
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Function is an IR function. Parameters arrive in registers 0..len(Params)-1.
type Function struct {
	Index   int
	Name    string
	Params  []Type
	Ret     Type
	Blocks  []*Block
	NumRegs int // size of the register file a frame must allocate
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// Global is a module-level data object living in the executor's global
// memory segment. Size is in 64-bit words; a negative Size means the length
// is supplied at bind time (input-dependent arrays).
type Global struct {
	Index int
	Name  string
	Size  int      // words; < 0 => dynamic, bound before execution
	Init  []uint64 // optional static initializer (len <= Size when Size >= 0)
}

// Module is a complete IR program.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global

	// Instrs is the module-wide static instruction table, indexed by
	// Instr.ID. Populated by Finalize.
	Instrs []*Instr

	// instrLoc[id] records where instruction id lives (for analyses that
	// need to map IDs back to program positions).
	instrLoc []InstrLoc

	funcByName   map[string]int
	globalByName map[string]int

	// blockBase[f] is the global basic-block index of function f's block 0.
	// Global block indices are what the weighted-CFG profiler uses, so one
	// indexed CFG list covers the whole program (paper Fig. 5).
	blockBase []int
	numBlocks int

	// version counts Finalize calls. Consumers that pre-decode the module
	// (the interpreter's program-image cache) key on (pointer, version) so
	// a re-finalized module is never served a stale decode.
	version uint64
}

// InstrLoc identifies the static position of an instruction.
type InstrLoc struct {
	Func  int // function index
	Block int // block index within the function
	Pos   int // position within the block
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{
		Name:         name,
		funcByName:   make(map[string]int),
		globalByName: make(map[string]int),
	}
}

// AddFunction appends a function shell and returns it.
func (m *Module) AddFunction(name string, params []Type, ret Type) *Function {
	f := &Function{Index: len(m.Funcs), Name: name, Params: params, Ret: ret}
	m.Funcs = append(m.Funcs, f)
	m.funcByName[name] = f.Index
	return f
}

// AddGlobal appends a global and returns it. size < 0 declares a
// dynamically sized (input-bound) array.
func (m *Module) AddGlobal(name string, size int, init []uint64) *Global {
	g := &Global{Index: len(m.Globals), Name: name, Size: size, Init: init}
	m.Globals = append(m.Globals, g)
	m.globalByName[name] = g.Index
	return g
}

// FuncByName resolves a function index by name.
func (m *Module) FuncByName(name string) (int, bool) {
	i, ok := m.funcByName[name]
	return i, ok
}

// GlobalByName resolves a global index by name.
func (m *Module) GlobalByName(name string) (int, bool) {
	i, ok := m.globalByName[name]
	return i, ok
}

// Entry returns the index of the program entry function ("main"), or -1.
func (m *Module) Entry() int {
	if i, ok := m.funcByName["main"]; ok {
		return i
	}
	return -1
}

// Finalize assigns module-wide instruction IDs and global basic-block
// indices, and rebuilds the static instruction table. It must be called
// after construction and after any transform that adds or removes
// instructions or blocks.
func (m *Module) Finalize() {
	m.version++
	m.Instrs = m.Instrs[:0]
	m.instrLoc = m.instrLoc[:0]
	m.blockBase = make([]int, len(m.Funcs))
	id := 0
	bb := 0
	for fi, f := range m.Funcs {
		m.blockBase[fi] = bb
		bb += len(f.Blocks)
		for bi, b := range f.Blocks {
			b.Index = bi
			for pi, in := range b.Instrs {
				in.ID = id
				id++
				m.Instrs = append(m.Instrs, in)
				m.instrLoc = append(m.instrLoc, InstrLoc{Func: fi, Block: bi, Pos: pi})
			}
		}
	}
	m.numBlocks = bb
}

// Version returns the module's finalization counter: it changes whenever
// Finalize re-numbers the module, so (pointer, Version) identifies one
// immutable snapshot of the instruction stream.
func (m *Module) Version() uint64 { return m.version }

// NumInstrs returns the number of static instructions (after Finalize).
func (m *Module) NumInstrs() int { return len(m.Instrs) }

// NumBlocks returns the number of basic blocks across all functions (after
// Finalize).
func (m *Module) NumBlocks() int { return m.numBlocks }

// GlobalBlockIndex converts (function, block) to the module-wide basic
// block index used by the weighted-CFG profiler.
func (m *Module) GlobalBlockIndex(fn, block int) int {
	return m.blockBase[fn] + block
}

// Loc returns the location of static instruction id (after Finalize).
func (m *Module) Loc(id int) InstrLoc { return m.instrLoc[id] }

// InjectableIDs returns the IDs of all instructions that are valid fault
// injection sites. If excludeDup is true, instructions inserted by the
// duplication transform are skipped (used when characterizing the original
// program rather than the protected binary).
func (m *Module) InjectableIDs(excludeDup bool) []int {
	ids := make([]int, 0, len(m.Instrs))
	for _, in := range m.Instrs {
		if !in.IsInjectable() {
			continue
		}
		if excludeDup && in.Dup {
			continue
		}
		ids = append(ids, in.ID)
	}
	return ids
}

// Clone returns a deep copy of the module. Transforms (duplication) work
// on clones so the pristine module can keep serving profiling runs.
func (m *Module) Clone() *Module {
	cp := NewModule(m.Name)
	for _, g := range m.Globals {
		cp.AddGlobal(g.Name, g.Size, append([]uint64(nil), g.Init...))
	}
	for _, f := range m.Funcs {
		nf := cp.AddFunction(f.Name, append([]Type(nil), f.Params...), f.Ret)
		nf.NumRegs = f.NumRegs
		for _, b := range f.Blocks {
			nb := &Block{Index: b.Index, Name: b.Name}
			for _, in := range b.Instrs {
				nb.Instrs = append(nb.Instrs, in.Clone())
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
	}
	cp.Finalize()
	return cp
}

// String renders the whole module as text, one instruction per line.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global @%s size=%d", g.Name, g.Size)
		if len(g.Init) > 0 {
			sb.WriteString(" init=")
			for i, v := range g.Init {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, "%d", v)
			}
		}
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = fmt.Sprintf("%%r%d:%s", i, p)
		}
		fmt.Fprintf(&sb, "func @%s(%s) %s {\n", f.Name, strings.Join(params, ", "), f.Ret)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "bb%d: ; %s\n", b.Index, b.Name)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "  [%4d] %s\n", in.ID, in.String())
			}
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
