package ir

import (
	"strings"
	"testing"
)

// vmod builds a minimal finalized one-function module around the
// instructions `build` emits, for verifier error-path tests.
func vmod(build func(m *Module, b *Builder)) *Module {
	m := NewModule("v")
	f := m.AddFunction("main", []Type{I64}, Void)
	b := NewBuilder(m, f)
	build(m, b)
	if f.Blocks[len(f.Blocks)-1].Terminator() == nil {
		b.RetVoid()
	}
	m.Finalize()
	return m
}

// TestVerifyErrorPaths drives every verifier diagnostic not already
// exercised by the broken-module tests, checking both that the module is
// rejected and that the message carries the expected diagnosis.
func TestVerifyErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		mod  func() *Module
		want string // substring of the error message
	}{
		{"func-no-blocks", func() *Module {
			m := vmod(func(m *Module, b *Builder) {})
			m.Funcs[0].Blocks = nil
			return m
		}, "no blocks"},

		{"numregs-below-params", func() *Module {
			m := vmod(func(m *Module, b *Builder) {})
			m.Funcs[0].NumRegs = 0
			return m
		}, "NumRegs"},

		{"empty-block", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				dead := b.NewBlock("dead")
				_ = dead
			})
			return m
		}, "empty block"},

		{"terminator-mid-block", func() *Module {
			return vmod(func(m *Module, b *Builder) {
				b.RetVoid()
				b.Block().Instrs = append(b.Block().Instrs,
					&Instr{Op: OpCallB, BFunc: BuiltinEmitI, Type: Void, Dst: -1, Args: []Operand{ConstI(1)}})
			})
		}, "not at block end"},

		{"dst-out-of-range", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.Bin(OpAdd, ConstI(1), ConstI(2))
			})
			m.Instrs[0].Dst = 99
			return m
		}, "dst register"},

		{"typed-result-no-dst", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.Bin(OpAdd, ConstI(1), ConstI(2))
			})
			m.Instrs[0].Dst = -1
			return m
		}, "without destination"},

		{"missing-operand", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.Bin(OpAdd, ConstI(1), ConstI(2))
			})
			m.Instrs[0].Args[1] = Operand{}
			return m
		}, "missing operand"},

		{"itof-bad-result", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.IToF(ConstI(1))
			})
			m.Instrs[0].Type = I64
			return m
		}, "itof"},

		{"ftoi-bad-result", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.FToI(ConstF(1))
			})
			m.Instrs[0].Type = F64
			return m
		}, "ftoi"},

		{"alloca-bad-result", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.Alloca(ConstI(1))
			})
			m.Instrs[0].Type = I64
			return m
		}, "alloca"},

		{"load-void-result", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				p := b.Alloca(ConstI(1))
				b.Load(I64, p)
			})
			m.Instrs[1].Type = Void
			m.Instrs[1].Dst = -1
			return m
		}, "load"},

		{"store-arity", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				p := b.Alloca(ConstI(1))
				b.Store(ConstI(1), p)
			})
			m.Instrs[1].Args = m.Instrs[1].Args[:1]
			return m
		}, "operands"},

		{"gep-bad-result", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				p := b.Alloca(ConstI(4))
				b.GEP(p, ConstI(1))
			})
			m.Instrs[1].Type = I64
			return m
		}, "gep"},

		{"br-successor-count", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				next := b.NewBlock("next")
				b.Br(next)
				b.SetBlock(next)
				b.RetVoid()
			})
			m.Instrs[0].Succs = nil
			return m
		}, "br needs 1 successor"},

		{"condbr-successor-count", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				then := b.NewBlock("then")
				els := b.NewBlock("else")
				c := b.ICmp(PredLT, Reg(0, I64), ConstI(1))
				b.CondBr(c, then, els)
				b.SetBlock(then)
				b.RetVoid()
				b.SetBlock(els)
				b.RetVoid()
			})
			for _, in := range m.Instrs {
				if in.Op == OpCondBr {
					in.Succs = in.Succs[:1]
				}
			}
			return m
		}, "condbr needs 2 successors"},

		{"nonvoid-ret-count", func() *Module {
			m := NewModule("v")
			f := m.AddFunction("main", nil, I64)
			b := NewBuilder(m, f)
			b.Ret(ConstI(1))
			m.Finalize()
			m.Instrs[0].Args = nil
			return m
		}, "exactly one value"},

		{"call-arg-count", func() *Module {
			m := NewModule("v")
			callee := m.AddFunction("f", []Type{I64, I64}, Void)
			cb := NewBuilder(m, callee)
			cb.RetVoid()
			f := m.AddFunction("main", nil, Void)
			b := NewBuilder(m, f)
			b.Call(0, Void, ConstI(1), ConstI(2))
			b.RetVoid()
			m.Finalize()
			for _, in := range m.Instrs {
				if in.Op == OpCall {
					in.Args = in.Args[:1]
				}
			}
			return m
		}, "want 2 args"},

		{"call-result-type", func() *Module {
			m := NewModule("v")
			callee := m.AddFunction("f", nil, I64)
			cb := NewBuilder(m, callee)
			cb.Ret(ConstI(1))
			f := m.AddFunction("main", nil, Void)
			b := NewBuilder(m, f)
			b.Call(0, I64, nil...)
			b.RetVoid()
			m.Finalize()
			for _, in := range m.Instrs {
				if in.Op == OpCall {
					in.Type = F64
				}
			}
			return m
		}, "result type"},

		{"builtin-out-of-range", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.CallB(BuiltinEmitI, ConstI(1))
			})
			m.Instrs[0].BFunc = Builtin(200)
			return m
		}, "builtin 200 out of range"},

		{"builtin-arity", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.CallB(BuiltinEmitI, ConstI(1))
			})
			m.Instrs[0].Args = nil
			return m
		}, "args"},

		{"select-arity", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				c := b.ICmp(PredLT, Reg(0, I64), ConstI(1))
				b.Select(c, ConstI(1), ConstI(2))
			})
			for _, in := range m.Instrs {
				if in.Op == OpSelect {
					in.Args = in.Args[:2]
				}
			}
			return m
		}, "operands"},

		{"join-arity", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.Join()
			})
			m.Instrs[0].Args = []Operand{ConstI(1)}
			return m
		}, "operands"},

		{"detect-arity", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				c := b.ICmp(PredLT, Reg(0, I64), ConstI(1))
				b.Detect(c)
			})
			for _, in := range m.Instrs {
				if in.Op == OpDetect {
					in.Args = nil
				}
			}
			return m
		}, "operands"},

		{"unknown-opcode", func() *Module {
			m := vmod(func(m *Module, b *Builder) {
				b.CallB(BuiltinEmitI, ConstI(1))
			})
			m.Instrs[0].Op = Op(200)
			m.Instrs[0].Type = Void
			m.Instrs[0].Dst = -1
			return m
		}, "unknown opcode"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Verify(tc.mod())
			if err == nil {
				t.Fatalf("Verify accepted a %s module", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Verify error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestVerifyErrorCoordinates pins the diagnostic format: instruction
// errors name the function, block, position within the block, and
// instruction ID, so a failure is navigable without a debugger.
func TestVerifyErrorCoordinates(t *testing.T) {
	m := vmod(func(m *Module, b *Builder) {
		b.CallB(BuiltinEmitI, ConstI(1))
		b.Bin(OpAdd, ConstI(1), ConstI(2))
	})
	// Break the add (block 0, position 1).
	m.Instrs[1].Args = m.Instrs[1].Args[:1]
	err := Verify(m)
	if err == nil {
		t.Fatal("Verify accepted broken module")
	}
	for _, part := range []string{"func main", "bb0", "pos 1", "[1]", "add"} {
		if !strings.Contains(err.Error(), part) {
			t.Fatalf("error %q lacks coordinate %q", err, part)
		}
	}
}

// TestVerifyStrictFallsBackToVerify documents VerifyStrict's contract in
// a binary that does not link the analysis package: with no registered
// dominance checker it must behave exactly like Verify.
func TestVerifyStrictFallsBackToVerify(t *testing.T) {
	prev := strictSSA
	strictSSA = nil
	defer func() { strictSSA = prev }()

	good := vmod(func(m *Module, b *Builder) {
		b.CallB(BuiltinEmitI, ConstI(1))
	})
	if err := VerifyStrict(good); err != nil {
		t.Fatalf("VerifyStrict without checker rejected a valid module: %v", err)
	}
	bad := vmod(func(m *Module, b *Builder) {
		b.Bin(OpAdd, ConstI(1), ConstI(2))
	})
	bad.Instrs[0].Args = bad.Instrs[0].Args[:1]
	if err := VerifyStrict(bad); err == nil {
		t.Fatal("VerifyStrict without checker must still run Verify")
	}

	// A registered checker is consulted after structural checks pass.
	called := false
	strictSSA = func(*Module) error { called = true; return nil }
	if err := VerifyStrict(good); err != nil || !called {
		t.Fatalf("VerifyStrict did not consult the registered checker (err %v, called %v)", err, called)
	}
}
