package profile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/minicc"
)

func TestCostProfile(t *testing.T) {
	m, err := minicc.Compile("c.mc", `
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + i; }
	emiti(s);
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof := interp.NewProfile(m)
	r := interp.NewRunner(m, interp.Config{})
	res := r.Run(interp.Binding{Args: []uint64{100}}, nil, prof)
	if res.Status != interp.StatusOK {
		t.Fatalf("status %v", res.Status)
	}

	c := NewCost(prof)
	if c.TotalCycles != res.Cycles || c.TotalDyn != res.DynInstrs {
		t.Fatalf("totals mismatch: %d/%d vs %d/%d", c.TotalCycles, c.TotalDyn, res.Cycles, res.DynInstrs)
	}
	var sumCost, sumDyn float64
	for id := 0; id < m.NumInstrs(); id++ {
		sumCost += c.Of(id)
		sumDyn += c.DynFraction(id)
	}
	if math.Abs(sumCost-1) > 1e-9 {
		t.Errorf("costs sum to %f, want 1", sumCost)
	}
	if math.Abs(sumDyn-1) > 1e-9 {
		t.Errorf("dyn fractions sum to %f, want 1", sumDyn)
	}
}

func TestWeightedCFGIndexedList(t *testing.T) {
	// The Fig. 5 scenario: a loop whose body splits on a condition. The
	// indexed CFG list must reflect per-block execution counts.
	m, err := minicc.Compile("w.mc", `
func main(n int) {
	var acc int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0) { acc = acc + 1; } else { acc = acc + 2; }
	}
	emiti(acc);
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof := interp.NewProfile(m)
	r := interp.NewRunner(m, interp.Config{})
	r.Run(interp.Binding{Args: []uint64{10}}, nil, prof)

	w := NewWeightedCFG(m, prof)
	list := w.IndexedList()
	if len(list) != m.NumBlocks() {
		t.Fatalf("list len %d != blocks %d", len(list), m.NumBlocks())
	}
	// Entry executes once; total block entries match edges+entries.
	if list[0] != 1 {
		t.Errorf("entry block count = %d, want 1", list[0])
	}
	var edgeSum int64
	for _, c := range w.Edges {
		edgeSum += c
	}
	// The map view must agree with the dense counters.
	var mapSum int64
	for _, c := range w.EdgeCountMap() {
		mapSum += c
	}
	if mapSum != edgeSum {
		t.Errorf("EdgeCountMap sum %d != dense sum %d", mapSum, edgeSum)
	}
	var blockSum int64
	for _, c := range list {
		blockSum += c
	}
	// Every block entry except function entries comes from an edge.
	if blockSum != edgeSum+1 { // one function (main) entered once
		t.Errorf("block entries %d != edges %d + 1", blockSum, edgeSum)
	}

	// Different inputs must give different indexed lists.
	prof2 := interp.NewProfile(m)
	r.Run(interp.Binding{Args: []uint64{20}}, nil, prof2)
	w2 := NewWeightedCFG(m, prof2)
	if Distance(list, w2.IndexedList()) == 0 {
		t.Error("different inputs produced identical indexed CFG lists")
	}
}

func TestDistance(t *testing.T) {
	if d := Distance([]int64{0, 3}, []int64{4, 0}); d != 5 {
		t.Errorf("Distance = %f, want 5", d)
	}
	if d := Distance([]int64{1, 2, 3}, []int64{1, 2, 3}); d != 0 {
		t.Errorf("self distance = %f", d)
	}
	// Length mismatch pads with zeros.
	if d := Distance([]int64{1}, []int64{1, 2}); d != 2 {
		t.Errorf("padded distance = %f, want 2", d)
	}
}

func TestAvgDistance(t *testing.T) {
	if AvgDistance([]int64{1}, nil) != 0 {
		t.Error("empty history must give 0")
	}
	l := []int64{0, 0}
	h := [][]int64{{3, 4}, {0, 0}}
	// distances: 5 and 0; Eq. 3 divides by |M|+1 = 3.
	want := 5.0 / 3.0
	if got := AvgDistance(l, h); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgDistance = %f, want %f", got, want)
	}
}

// Properties of the distance metric: symmetry, identity, triangle
// inequality on random vectors.
func TestDistanceMetricProperties(t *testing.T) {
	norm := func(xs []int16) []int64 {
		out := make([]int64, len(xs))
		for i, x := range xs {
			out[i] = int64(x)
		}
		return out
	}
	sym := func(a, b []int16) bool {
		return Distance(norm(a), norm(b)) == Distance(norm(b), norm(a))
	}
	ident := func(a []int16) bool { return Distance(norm(a), norm(a)) == 0 }
	tri := func(a, b, c []int16) bool {
		ab := Distance(norm(a), norm(b))
		bc := Distance(norm(b), norm(c))
		ac := Distance(norm(a), norm(c))
		return ac <= ab+bc+1e-9
	}
	for name, prop := range map[string]any{"symmetry": sym, "identity": ident, "triangle": tri} {
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
