// Package profile derives the dynamic profiles SID and MINPSID consume
// from raw interpreter statistics: the per-instruction cycle cost profile
// (paper Eq. 1) and the weighted control-flow graph with its indexed CFG
// list (paper Fig. 5 and Eq. 3).
package profile

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Cost is the per-instruction cost profile of one execution: the fraction
// of total dynamic cycles attributable to each static instruction.
type Cost struct {
	InstrCycles []int64 // modeled cycles per static instruction ID
	InstrCount  []int64 // dynamic executions per static instruction ID
	TotalCycles int64
	TotalDyn    int64
}

// NewCost builds a cost profile from an interpreter profile.
func NewCost(p *interp.Profile) *Cost {
	c := &Cost{
		InstrCycles: append([]int64(nil), p.InstrCycles...),
		InstrCount:  append([]int64(nil), p.InstrCount...),
	}
	for i := range p.InstrCycles {
		c.TotalCycles += p.InstrCycles[i]
		c.TotalDyn += p.InstrCount[i]
	}
	return c
}

// Of returns Cost_i = DynamicCycles_i / TotalCycles (paper Eq. 1).
func (c *Cost) Of(instrID int) float64 {
	if c.TotalCycles == 0 {
		return 0
	}
	return float64(c.InstrCycles[instrID]) / float64(c.TotalCycles)
}

// DynFraction returns the fraction of dynamic instructions contributed by
// instrID (used for protection-level accounting, §VIII-A).
func (c *Cost) DynFraction(instrID int) float64 {
	if c.TotalDyn == 0 {
		return 0
	}
	return float64(c.InstrCount[instrID]) / float64(c.TotalDyn)
}

// WeightedCFG is the dynamic control-flow profile of one execution: every
// basic block of the program (module-wide indexing) annotated with its
// execution count, plus the traversed edge multiset in the interpreter's
// dense CSR numbering (Edges[i] counts executions of Index.Edge(i)).
type WeightedCFG struct {
	BlockCount []int64
	Index      *interp.EdgeIndex
	Edges      []int64
}

// NewWeightedCFG extracts the weighted CFG from an interpreter profile.
// The edge table is shared with (not copied from) the profile's static
// index; the counters are snapshotted.
func NewWeightedCFG(m *ir.Module, p *interp.Profile) *WeightedCFG {
	w := &WeightedCFG{
		BlockCount: append([]int64(nil), p.BlockCount...),
		Index:      p.Edges,
		Edges:      append([]int64(nil), p.EdgeHits...),
	}
	_ = m
	return w
}

// EdgeCountMap materializes the edge counters keyed by global block pairs,
// the view the weighted CFG historically exposed. Hot paths (GA fitness)
// should iterate Edges instead.
func (w *WeightedCFG) EdgeCountMap() map[[2]int]int64 {
	m := make(map[[2]int]int64, len(w.Edges))
	for i, c := range w.Edges {
		if c == 0 {
			continue
		}
		from, to := w.Index.Edge(i)
		m[[2]int{from, to}] = c
	}
	return m
}

// IndexedList converts the weighted CFG into the indexed CFG list of the
// paper (Fig. 5): position n holds the execution count of basic block n.
func (w *WeightedCFG) IndexedList() []int64 {
	return append([]int64(nil), w.BlockCount...)
}

// IndexedListOf extracts the indexed CFG list straight from an interpreter
// profile, skipping the WeightedCFG intermediate (and its edge snapshot).
// GA fitness evaluation calls this once per candidate input, so the saved
// copies add up.
func IndexedListOf(p *interp.Profile) []int64 {
	return append([]int64(nil), p.BlockCount...)
}

// Distance returns the Euclidean distance between two indexed CFG lists.
// Lists of different lengths are compared over the longer length with
// missing entries treated as zero.
func Distance(a, b []int64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var av, bv int64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := float64(av - bv)
		sum += d * d
	}
	return math.Sqrt(sum)
}

// AvgDistance computes the fitness score S_L of the paper's Eq. 3: the
// average Euclidean distance between list l and every list in history.
// (The paper normalizes by |M|+1; with M = len(history) recorded inputs.)
func AvgDistance(l []int64, history [][]int64) float64 {
	if len(history) == 0 {
		return 0
	}
	var sum float64
	for _, h := range history {
		sum += Distance(l, h)
	}
	return sum / float64(len(history)+1)
}
