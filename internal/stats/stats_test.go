package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	if s.N != 8 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-31.0/8) > 1e-12 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.Median != 3.5 {
		t.Errorf("median = %f, want 3.5", s.Median)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary has N != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 0.25: 20, 0.5: 30, 0.75: 40, 1: 50}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%.0f = %f, want %f", p*100, got, want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %f, want 5", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%f,%f] does not contain p=0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Fatalf("interval too wide for n=100: %f", hi-lo)
	}
	// Paper-scale check: 1000 trials yields margins of a few percent.
	if m := MarginOfError(100, 1000); m < 0.0026 || m > 0.031 {
		t.Errorf("margin for 100/1000 = %f, want within the paper's 0.26%%..3.10%% band", m)
	}
	// Degenerate cases.
	if lo, hi := WilsonInterval(0, 0); lo != 0 || hi != 1 {
		t.Errorf("n=0 interval = [%f,%f]", lo, hi)
	}
	if lo, _ := WilsonInterval(0, 10); lo != 0 {
		t.Errorf("k=0 lower bound = %f", lo)
	}
	if _, hi := WilsonInterval(10, 10); hi != 1 {
		t.Errorf("k=n upper bound = %f", hi)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			v := Percentile(xs, p)
			if v < prev-1e-12 || v < xs[0]-1e-12 || v > xs[m-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Wilson interval always contains the point estimate.
func TestWilsonContainsEstimateProperty(t *testing.T) {
	prop := func(k, n uint16) bool {
		nn := int64(n%1000) + 1
		kk := int64(k) % (nn + 1)
		lo, hi := WilsonInterval(kk, nn)
		p := float64(kk) / float64(nn)
		return lo <= p+1e-12 && p <= hi+1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Percentile must not trust its precondition: an unsorted sample yields
// the same result as a sorted one, and the caller's slice is not mutated.
func TestPercentileUnsortedInput(t *testing.T) {
	unsorted := []float64{0.9, 0.1, 0.5, 0.3, 0.7}
	orig := append([]float64(nil), unsorted...)
	sorted := append([]float64(nil), unsorted...)
	sort.Float64s(sorted)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got := Percentile(unsorted, p)
		want := Percentile(sorted, p)
		if got != want {
			t.Errorf("Percentile(unsorted, %v) = %v, want %v", p, got, want)
		}
	}
	for i := range orig {
		if unsorted[i] != orig[i] {
			t.Fatalf("Percentile mutated its input: %v -> %v", orig, unsorted)
		}
	}
}

// Empty and NaN-poisoned samples must yield explicit NaN statistics, not
// plausible-looking zeros (see the guards' doc comments).
func TestSummarizeEmptyAndNaN(t *testing.T) {
	e := Summarize(nil)
	if e.N != 0 {
		t.Fatalf("empty N = %d", e.N)
	}
	for name, v := range map[string]float64{"Min": e.Min, "Max": e.Max, "Mean": e.Mean,
		"Median": e.Median, "P25": e.P25, "P75": e.P75} {
		if !math.IsNaN(v) {
			t.Errorf("empty sample: %s = %v, want NaN", name, v)
		}
	}
	p := Summarize([]float64{1, math.NaN(), 3})
	if p.N != 3 {
		t.Fatalf("poisoned N = %d, want 3", p.N)
	}
	if !math.IsNaN(p.Mean) || !math.IsNaN(p.Median) || !math.IsNaN(p.Min) || !math.IsNaN(p.Max) {
		t.Fatalf("NaN input must poison every statistic: %+v", p)
	}
}

func TestPercentileEmptyAndNaN(t *testing.T) {
	if v := Percentile(nil, 0.5); !math.IsNaN(v) {
		t.Fatalf("Percentile(empty) = %v, want NaN", v)
	}
	for _, p := range []float64{0, 0.5, 1} {
		if v := Percentile([]float64{1, math.NaN(), 2}, p); !math.IsNaN(v) {
			t.Fatalf("Percentile(NaN sample, %v) = %v, want NaN", p, v)
		}
	}
	// A clean sample is unaffected by the guards.
	if v := Percentile([]float64{1, 2, 3}, 0.5); v != 2 {
		t.Fatalf("clean median = %v, want 2", v)
	}
}

func TestSpearmanRank(t *testing.T) {
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }

	// Perfect monotone agreement, even through a nonlinear map.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if r := SpearmanRank(x, y); !near(r, 1) {
		t.Fatalf("monotone rho = %v, want 1", r)
	}
	// Perfect inversion.
	if r := SpearmanRank(x, []float64{5, 4, 3, 2, 1}); !near(r, -1) {
		t.Fatalf("inverted rho = %v, want -1", r)
	}
	// Hand-checked tie case: x ranks {1, 2.5, 2.5, 4}, y ranks
	// {1.5, 1.5, 3, 4} -> rho = 0.8//sqrt(0.9*0.9) ... compute directly.
	xt := []float64{1, 2, 2, 3}
	yt := []float64{0, 0, 5, 9}
	r := SpearmanRank(xt, yt)
	// ranks: rx = {1, 2.5, 2.5, 4}, ry = {1.5, 1.5, 3, 4}
	// centered: rx-2.5 = {-1.5, 0, 0, 1.5}; ry-2.5 = {-1, -1, .5, 1.5}
	// sxy = 1.5 + 0 + 0 + 2.25 = 3.75; sxx = 4.5; syy = 1+1+.25+2.25 = 4.5
	want := 3.75 / 4.5
	if !near(r, want) {
		t.Fatalf("tied rho = %v, want %v", r, want)
	}
	// Degenerate inputs are NaN, not a fake zero.
	if r := SpearmanRank([]float64{1, 2}, []float64{3}); !math.IsNaN(r) {
		t.Fatalf("mismatched lengths rho = %v, want NaN", r)
	}
	if r := SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3}); !math.IsNaN(r) {
		t.Fatalf("constant sample rho = %v, want NaN", r)
	}
}
