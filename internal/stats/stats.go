// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics for coverage distributions (the
// candlesticks of Figs. 2/6/9) and binomial confidence intervals for
// fault-injection estimates (the error bars of §III-A3).
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample distribution.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
}

// Summarize computes a Summary of xs. An empty sample returns N=0 with
// every statistic NaN, and a sample containing any NaN returns its true N
// with every statistic NaN: a missing or poisoned distribution renders as
// an explicit NaN row in campaign tables instead of a plausible-looking
// zero.
func Summarize(xs []float64) Summary {
	nan := math.NaN()
	if len(xs) == 0 {
		return Summary{Min: nan, Max: nan, Mean: nan, Median: nan, P25: nan, P75: nan}
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			return Summary{N: len(xs), Min: nan, Max: nan, Mean: nan, Median: nan, P25: nan, P75: nan}
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		Median: Percentile(sorted, 0.50),
		P25:    Percentile(sorted, 0.25),
		P75:    Percentile(sorted, 0.75),
	}
}

// Percentile returns the p-th percentile (0..1) of a sorted sample using
// linear interpolation between closest ranks. The input is expected
// pre-sorted; an unsorted sample is defensively copied and sorted rather
// than silently interpolating between the wrong ranks. An empty sample
// returns NaN, and a sample containing any NaN returns NaN (NaN is
// unordered, so rank interpolation over it would pick an
// implementation-defined neighbor): garbage in, explicit NaN out.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	for _, x := range sorted {
		if math.IsNaN(x) {
			return math.NaN()
		}
	}
	if !sort.Float64sAreSorted(sorted) {
		cp := append([]float64(nil), sorted...)
		sort.Float64s(cp)
		sorted = cp
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WilsonInterval returns the 95% Wilson score interval for k successes in
// n trials: the error bars reported for FI-derived probabilities.
func WilsonInterval(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MarginOfError returns the half-width of the 95% Wilson interval — the
// "error bar" quoted in the paper (0.26% to 3.10%).
func MarginOfError(k, n int64) float64 {
	lo, hi := WilsonInterval(k, n)
	return (hi - lo) / 2
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
