package stats

import (
	"math"
	"sort"
)

// SpearmanRank returns Spearman's rank-correlation coefficient between
// the paired samples x and y: Pearson correlation over average-tie
// ranks. It answers "does a static score order sites the way measured
// SDC probability does" without assuming the relationship is linear.
// Mismatched lengths, fewer than two pairs, or a constant sample (zero
// rank variance) return NaN.
func SpearmanRank(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	rx := ranks(x)
	ry := ranks(y)
	mx := Mean(rx)
	my := Mean(ry)
	var sxy, sxx, syy float64
	for i := range rx {
		dx := rx[i] - mx
		dy := ry[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks assigns 1-based ranks to xs, ties receiving the average of the
// rank positions they span (the fractional-rank convention).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the value; average 1-based rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}
