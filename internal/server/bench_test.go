package server

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// benchSpec is the campaign every server benchmark runs: small enough
// to iterate, large enough to span several shards.
func benchSpec(seed int64) JobSpec {
	return JobSpec{Bench: "fft", Trials: 200, Seed: seed}
}

// BenchmarkServerCampaign measures the full scheduler path — submit,
// shard planning, worker-pool dispatch through the artifact store,
// composition — on a COLD store every iteration (ns/trial of the
// service itself, the overhead CI's benchdiff gate tracks).
func BenchmarkServerCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := New(Options{StoreDir: b.TempDir(), Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		j, _, err := s.Submit(benchSpec(int64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if j.State() != StateDone {
			b.Fatalf("job ended %s", j.State())
		}
	}
}

// BenchmarkServerCampaignWarm measures the shard-warm path: every
// iteration resubmits a spec whose shards are already committed, with
// the composed result document evicted so the scheduler re-composes
// from shard artifacts alone (the resume path's cost model). The
// reported dedup_hit_rate is the fraction of shard lookups served
// without injecting a fault — 1.0 when key hygiene holds.
func BenchmarkServerCampaignWarm(b *testing.B) {
	dir := b.TempDir()
	warm, err := New(Options{StoreDir: dir, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	j, _, err := warm.Submit(benchSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	<-j.Done()
	// Evicting only the composed document (not the job record or shard
	// artifacts) forces each iteration through plan + per-shard store
	// lookup + compose rather than the instant result join.
	resultPath := filepath.Join(warm.store.Dir(), kindJobResult, j.ID+".json")
	b.ResetTimer()
	var hits, lookups int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := os.Remove(resultPath); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		s, err := New(Options{StoreDir: dir, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		j, _, err := s.Submit(benchSpec(1))
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		if j.State() != StateDone {
			b.Fatalf("job ended %s", j.State())
		}
		st := s.StoreStats()
		hits += st.DiskHits
		lookups += st.DiskHits + st.Runs
	}
	b.StopTimer()
	if lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "dedup_hit_rate")
	}
}

// BenchmarkDirectCampaign is the baseline the server overhead is
// measured against: the same sectional campaign run inline, no store,
// no HTTP, no scheduler.
func BenchmarkDirectCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := benchSpec(int64(i + 1))
		r, err := resolve(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.prog.InjectionCampaignSectional(
			r.in, spec.Trials, spec.Seed, nil, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink string

// BenchmarkJobKey measures identity derivation alone (it sits on the
// submit hot path and runs once per request, dedup hits included).
func BenchmarkJobKey(b *testing.B) {
	r, err := resolve(benchSpec(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = jobKey(r).Hex()
	}
	if benchSink == "" {
		b.Fatal(fmt.Errorf("empty key"))
	}
}
