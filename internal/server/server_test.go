package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/interp"
)

// waitDone blocks until the job is terminal and returns its state.
func waitDone(t *testing.T, j *Job) string {
	t.Helper()
	<-j.Done()
	return j.State()
}

// directResult runs the same campaign inline through the sectional
// path (the oracle the scheduler must match byte-for-byte).
func directResult(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	r, err := resolve(spec)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	var model fault.Model
	if spec.Model != "" {
		var ok bool
		if model, ok = fault.ModelByName(spec.Model); !ok {
			t.Fatalf("unknown model %q", spec.Model)
		}
	}
	res, profiles, err := r.prog.InjectionCampaignSectional(
		r.in, spec.Trials, spec.Seed, model, nil, nil, nil)
	if err != nil {
		t.Fatalf("direct campaign: %v", err)
	}
	doc := BuildResult(spec.Bench, r.prog.Spec.String(r.in), spec.Seed, spec.Model, res, profiles)
	return EncodeResult(doc)
}

// serverResult submits the spec to a fresh single-run server and
// returns the canonical result bytes.
func serverResult(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j, deduped, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if deduped {
		t.Fatalf("fresh store reported dedup")
	}
	if st := waitDone(t, j); st != StateDone {
		t.Fatalf("job ended %s: %s", st, j.Status().Error)
	}
	return EncodeResult(j.Result())
}

// TestServerMatchesDirect is the core determinism contract: a
// server-scheduled, sharded, store-mediated campaign must be
// bit-identical to the inline sectional campaign at the same seed,
// across fault models.
func TestServerMatchesDirect(t *testing.T) {
	for _, model := range []string{"", "byteflip"} {
		spec := JobSpec{Bench: "fft", Trials: 300, Seed: 9, Model: model}
		direct := directResult(t, spec)
		got := serverResult(t, spec)
		if !bytes.Equal(direct, got) {
			t.Errorf("model %q: server result differs from direct run\ndirect:\n%s\nserver:\n%s",
				model, direct, got)
		}
	}
}

// TestServerMatchesDirectAcrossEngines pins the same contract under
// every execution engine: the engine is observational, so the server
// result must not move.
func TestServerMatchesDirectAcrossEngines(t *testing.T) {
	spec := JobSpec{Bench: "fft", Trials: 200, Seed: 3}
	want := directResult(t, spec)
	old := interp.DefaultEngine
	defer func() { interp.DefaultEngine = old }()
	for _, name := range []string{"legacy", "image", "compiled"} {
		eng, err := interp.ParseEngine(name)
		if err != nil {
			t.Fatalf("ParseEngine(%s): %v", name, err)
		}
		interp.DefaultEngine = eng
		if got := serverResult(t, spec); !bytes.Equal(want, got) {
			t.Errorf("engine %s: server result differs from direct oracle", name)
		}
	}
}

// TestServerRandomInputResolution pins content addressing of inputs:
// the same (input, input_seed) pair resolves to the same job, and the
// campaign matches the direct run on the resolved input.
func TestServerRandomInputResolution(t *testing.T) {
	spec := JobSpec{Bench: "kmeans", Input: "random", InputSeed: 11, Trials: 150, Seed: 2}
	if !bytes.Equal(directResult(t, spec), serverResult(t, spec)) {
		t.Errorf("random-input server result differs from direct run")
	}
}

// TestPreemptResumeZeroReinjection simulates a mid-job kill: the
// crash-test hook parks the job after one committed shard with the
// on-disk record still "running"; a second server on the same store
// must resume it, serve the committed shard from disk (zero re-
// injected faults), execute only the remainder, and produce the same
// bytes as the direct run.
func TestPreemptResumeZeroReinjection(t *testing.T) {
	spec := JobSpec{Bench: "fft", Trials: 300, Seed: 9}
	dir := t.TempDir()

	s1, err := New(Options{StoreDir: dir, Workers: 1, PreemptAfter: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j1, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitDone(t, j1); st != StateFailed {
		t.Fatalf("preempted job ended %s, want failed (parked)", st)
	}
	stats1 := s1.StoreStats()
	if stats1.Runs != 1 {
		t.Fatalf("preempted server ran %d shards, want exactly 1", stats1.Runs)
	}

	// "Restart": a fresh server over the same store resumes the parked
	// job automatically.
	s2, err := New(Options{StoreDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("New(resume): %v", err)
	}
	j2, ok := s2.Get(j1.ID)
	if !ok {
		t.Fatalf("resumed server does not know job %s", j1.ID)
	}
	if st := waitDone(t, j2); st != StateDone {
		t.Fatalf("resumed job ended %s: %s", st, j2.Status().Error)
	}
	stats2 := s2.StoreStats()
	total := j2.Status().Shards.Total
	if stats2.DiskHits != 1 {
		t.Errorf("resumed server: %d disk hits, want 1 (the committed shard)", stats2.DiskHits)
	}
	if want := int64(total) - 1; stats2.Runs != want {
		t.Errorf("resumed server: %d runs, want %d (zero re-injection into committed shards)",
			stats2.Runs, want)
	}
	if got, want := EncodeResult(j2.Result()), directResult(t, spec); !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from direct run")
	}
	if c := s2.Obs().Counter("server.jobs.resumed").Value(); c != 1 {
		t.Errorf("server.jobs.resumed = %d, want 1", c)
	}
}

// TestDedupCrossTenant: two identical submissions from different
// tenants share one job (the second joins), and only one execution is
// admitted or charged.
func TestDedupCrossTenant(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 2, holdJobs: hold})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := JobSpec{Bench: "fft", Trials: 100, Seed: 4, Tenant: "alice"}
	j1, dedup1, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	spec2 := spec
	spec2.Tenant = "bob"
	j2, dedup2, err := s.Submit(spec2)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if dedup1 || !dedup2 {
		t.Fatalf("dedup flags = %v,%v, want false,true", dedup1, dedup2)
	}
	if j1 != j2 {
		t.Fatalf("identical specs mapped to different jobs %s and %s", j1.ID, j2.ID)
	}
	close(hold)
	if st := waitDone(t, j1); st != StateDone {
		t.Fatalf("job ended %s", st)
	}
	if c := s.Obs().Counter("server.dedup.joins").Value(); c != 1 {
		t.Errorf("server.dedup.joins = %d, want 1", c)
	}
	if c := s.Obs().Counter("server.jobs.admitted").Value(); c != 1 {
		t.Errorf("server.jobs.admitted = %d, want 1 (single flight)", c)
	}
}

// TestConcurrentSubmitStress hammers Submit from many goroutines with
// a mix of identical and distinct specs (run under -race in CI). The
// single-flight invariant: exactly one admission per distinct spec,
// every duplicate a join.
func TestConcurrentSubmitStress(t *testing.T) {
	const distinct, dupsEach = 4, 6
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 4,
		MaxActive: 2, MaxQueue: distinct * 2, TenantMax: distinct * 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, distinct*dupsEach)
	jobs := make(chan *Job, distinct*dupsEach)
	for d := 0; d < distinct; d++ {
		for k := 0; k < dupsEach; k++ {
			wg.Add(1)
			go func(d, k int) {
				defer wg.Done()
				spec := JobSpec{Bench: "fft", Trials: 60, Seed: int64(100 + d),
					Tenant: fmt.Sprintf("t%d", k%3)}
				j, _, err := s.Submit(spec)
				if err != nil {
					errs <- fmt.Errorf("submit d=%d k=%d: %w", d, k, err)
					return
				}
				jobs <- j
			}(d, k)
		}
	}
	wg.Wait()
	close(errs)
	close(jobs)
	for err := range errs {
		t.Error(err)
	}
	seen := map[string]*Job{}
	for j := range jobs {
		seen[j.ID] = j
	}
	if len(seen) != distinct {
		t.Fatalf("got %d distinct jobs, want %d", len(seen), distinct)
	}
	for _, j := range seen {
		if st := waitDone(t, j); st != StateDone {
			t.Errorf("job %s ended %s: %s", j.ID, st, j.Status().Error)
		}
	}
	if c := s.Obs().Counter("server.jobs.admitted").Value(); c != distinct {
		t.Errorf("server.jobs.admitted = %d, want %d", c, distinct)
	}
	if c := s.Obs().Counter("server.dedup.joins").Value(); c != distinct*(dupsEach-1) {
		t.Errorf("server.dedup.joins = %d, want %d", c, distinct*(dupsEach-1))
	}
}

// TestAdmissionControl pins the backpressure contract: a full queue
// and an over-quota tenant both reject with a retry hint, and
// canceling a queued job drains its slot immediately.
func TestAdmissionControl(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 1,
		MaxActive: 1, MaxQueue: 1, TenantMax: 2, holdJobs: hold})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mkSpec := func(seed int64, tenant string) JobSpec {
		return JobSpec{Bench: "fft", Trials: 50, Seed: seed, Tenant: tenant}
	}
	if _, _, err := s.Submit(mkSpec(1, "alice")); err != nil { // runs (held)
		t.Fatalf("submit 1: %v", err)
	}
	j2, _, err := s.Submit(mkSpec(2, "alice")) // queued
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if st := j2.State(); st != StateQueued {
		t.Fatalf("job 2 state %s, want queued", st)
	}

	// Queue full: bob is under his tenant quota but there is no room.
	_, _, err = s.Submit(mkSpec(3, "bob"))
	rej, ok := err.(*RejectError)
	if !ok {
		t.Fatalf("queue-full submit returned %v, want *RejectError", err)
	}
	if rej.RetryAfterSeconds <= 0 {
		t.Errorf("reject has no Retry-After hint")
	}

	// Tenant quota: alice already has 2 jobs in flight; even after the
	// queue drains she is over quota.
	if _, ok := s.Cancel(j2.ID); !ok {
		t.Fatalf("cancel queued job failed")
	}
	if st := waitDone(t, j2); st != StateCanceled {
		t.Fatalf("canceled job state %s", st)
	}
	if _, _, err = s.Submit(mkSpec(4, "alice")); err != nil {
		t.Fatalf("submit after cancel-drain should admit, got %v", err)
	}
	if _, _, err = s.Submit(mkSpec(5, "alice")); err == nil {
		t.Fatalf("tenant over quota was admitted")
	} else if _, ok := err.(*RejectError); !ok {
		t.Fatalf("tenant-quota submit returned %v, want *RejectError", err)
	}
	if c := s.Obs().Counter("server.jobs.rejected").Value(); c != 2 {
		t.Errorf("server.jobs.rejected = %d, want 2", c)
	}
	close(hold)
}

// TestCancelRunningDrainsOnce pins the cancel/start race fix: a job
// is StateRunning the moment its run slot is taken (before the runJob
// goroutine is scheduled), so a cancel racing job start always takes
// the cooperative path. Repeated cancels — running, then terminal —
// must drain the tenant charge and running slot exactly once and never
// re-close the done channel.
func TestCancelRunningDrainsOnce(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 1, MaxActive: 1, holdJobs: hold})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j, _, err := s.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 1, Tenant: "alice"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := j.State(); st != StateRunning {
		t.Fatalf("job state %s immediately after admission to a free slot, want running", st)
	}
	for i := 0; i < 2; i++ { // second cancel of a running job is a no-op
		if _, ok := s.Cancel(j.ID); !ok {
			t.Fatalf("cancel %d failed", i)
		}
	}
	close(hold)
	if st := waitDone(t, j); st != StateCanceled {
		t.Fatalf("job ended %s, want canceled", st)
	}
	if _, ok := s.Cancel(j.ID); !ok { // cancel of a terminal job: no-op, no panic
		t.Fatalf("cancel of terminal job failed")
	}
	s.mu.Lock()
	tenant, active := s.tenants["alice"], s.active
	s.mu.Unlock()
	if tenant != 0 {
		t.Errorf("tenant charge = %d after cancel, want 0 (drained exactly once)", tenant)
	}
	if active != 0 {
		t.Errorf("active = %d after cancel, want 0", active)
	}
}

// TestResubmitQuotaFollowsSubmitter: resubmitting a canceled job from
// a different tenant charges (and quota-checks) the resubmitter, not
// the original submitter.
func TestResubmitQuotaFollowsSubmitter(t *testing.T) {
	hold := make(chan struct{})
	s, err := New(Options{StoreDir: t.TempDir(), Workers: 1,
		MaxActive: 1, MaxQueue: 4, TenantMax: 1, holdJobs: hold})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// The filler occupies the only run slot so the target stays queued.
	filler, _, err := s.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 1, Tenant: "alice"})
	if err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	target := JobSpec{Bench: "fft", Trials: 50, Seed: 2, Tenant: "bob"}
	j, _, err := s.Submit(target)
	if err != nil {
		t.Fatalf("submit target: %v", err)
	}
	if _, ok := s.Cancel(j.ID); !ok {
		t.Fatalf("cancel queued target failed")
	}
	if st := waitDone(t, j); st != StateCanceled {
		t.Fatalf("target ended %s, want canceled", st)
	}

	resub := target
	resub.Tenant = "carol"
	j2, deduped, err := s.Submit(resub)
	if err != nil {
		t.Fatalf("resubmit as carol: %v", err)
	}
	if deduped || j2 != j {
		t.Fatalf("resubmit: deduped=%v same-job=%v, want fresh attempt on the same job", deduped, j2 == j)
	}
	if got := j2.Status().Tenant; got != "carol" {
		t.Errorf("resubmitted job tenant %q, want carol", got)
	}
	s.mu.Lock()
	bob, carol := s.tenants["bob"], s.tenants["carol"]
	s.mu.Unlock()
	if bob != 0 || carol != 1 {
		t.Errorf("tenant charges bob=%d carol=%d, want 0 and 1 (quota follows the resubmitter)", bob, carol)
	}
	// Carol is now at her quota of 1; her next distinct job rejects.
	if _, _, err := s.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 3, Tenant: "carol"}); err == nil {
		t.Errorf("carol over quota was admitted")
	} else if _, ok := err.(*RejectError); !ok {
		t.Errorf("carol over quota returned %v, want *RejectError", err)
	}
	close(hold)
	if st := waitDone(t, filler); st != StateDone {
		t.Errorf("filler ended %s", st)
	}
	if st := waitDone(t, j2); st != StateDone {
		t.Errorf("resubmitted job ended %s: %s", st, j2.Status().Error)
	}
	s.mu.Lock()
	carol = s.tenants["carol"]
	s.mu.Unlock()
	if carol != 0 {
		t.Errorf("carol charge = %d after completion, want 0", carol)
	}
}

// TestJobIDContentAddressed pins what may and may not move the job
// identity: tenant never; trials, seed, model, and resolved input
// always.
func TestJobIDContentAddressed(t *testing.T) {
	base := JobSpec{Bench: "fft", Trials: 100, Seed: 1, Tenant: "alice"}
	key := func(spec JobSpec) string {
		r, err := resolve(spec)
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		return jobKey(r).Hex()
	}
	id := key(base)
	tenant := base
	tenant.Tenant = "bob"
	if key(tenant) != id {
		t.Errorf("tenant changed the job identity")
	}
	refSpelled := base
	refSpelled.Input = "ref"
	if key(refSpelled) != id {
		t.Errorf("explicit \"ref\" spelling changed the job identity")
	}
	modelSpelled := base
	modelSpelled.Model = "bitflip"
	if key(modelSpelled) != id {
		t.Errorf("canonical model spelling changed the job identity")
	}
	for name, mut := range map[string]func(*JobSpec){
		"trials": func(s *JobSpec) { s.Trials++ },
		"seed":   func(s *JobSpec) { s.Seed++ },
		"model":  func(s *JobSpec) { s.Model = "byteflip" },
		"bench":  func(s *JobSpec) { s.Bench = "kmeans" },
	} {
		spec := base
		mut(&spec)
		if key(spec) == id {
			t.Errorf("%s change did not move the job identity", name)
		}
	}
}

// TestSubmitValidation rejects malformed specs with plain errors
// (HTTP 400), never admission errors.
func TestSubmitValidation(t *testing.T) {
	s, err := New(Options{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for name, spec := range map[string]JobSpec{
		"zero trials":   {Bench: "fft", Trials: 0, Seed: 1},
		"bad benchmark": {Bench: "no-such-bench", Trials: 10, Seed: 1},
		"bad input":     {Bench: "fft", Input: "weird", Trials: 10, Seed: 1},
		"bad model":     {Bench: "fft", Model: "no-such-model", Trials: 10, Seed: 1},
	} {
		_, _, err := s.Submit(spec)
		if err == nil {
			t.Errorf("%s: admitted", name)
		}
		if _, ok := err.(*RejectError); ok {
			t.Errorf("%s: got admission reject, want validation error", name)
		}
	}
}

// TestRestartServesPersistedResult: a completed job's result survives
// the server process; a resubmission on a fresh server over the same
// store joins it without re-running anything.
func TestRestartServesPersistedResult(t *testing.T) {
	spec := JobSpec{Bench: "fft", Trials: 120, Seed: 6}
	dir := t.TempDir()
	s1, err := New(Options{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j1, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitDone(t, j1); st != StateDone {
		t.Fatalf("job ended %s", st)
	}
	want := EncodeResult(j1.Result())

	s2, err := New(Options{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("New(restart): %v", err)
	}
	j2, deduped, err := s2.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !deduped || j2.State() != StateDone {
		t.Fatalf("resubmit on warm store: deduped=%v state=%s, want join of done job",
			deduped, j2.State())
	}
	if got := EncodeResult(j2.Result()); !bytes.Equal(got, want) {
		t.Errorf("persisted result differs after restart")
	}
	if runs := s2.StoreStats().Runs; runs != 0 {
		t.Errorf("restart re-ran %d shards, want 0", runs)
	}
	// A disk-joined job reports full shard progress (synthesized from
	// its section count), consistent with a freshly completed job.
	if p := j2.Status().Shards; p.Total == 0 || p.Done != p.Total {
		t.Errorf("disk-joined job reports shards %d/%d, want full progress", p.Done, p.Total)
	}
	if p1, p2 := j1.Status().Shards, j2.Status().Shards; p1 != p2 {
		t.Errorf("disk-joined progress %+v differs from fresh job's %+v", p2, p1)
	}
}

// TestComposePlannedOverflowShortfall: a trial budget exceeding the
// program's total injectable weight surfaces as shortfall through the
// scheduler exactly as it does inline.
func TestComposePlannedOverflowShortfall(t *testing.T) {
	spec := JobSpec{Bench: "fft", Trials: 40, Seed: 12}
	direct := directResult(t, spec)
	got := serverResult(t, spec)
	if !bytes.Equal(direct, got) {
		t.Errorf("small-budget result differs from direct run")
	}
}
