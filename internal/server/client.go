package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a campaign server over its HTTP API. The zero
// HTTP client is usable; Base is the server root ("http://host:port").
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient builds a client for the given server base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

// apiError decodes a non-2xx reply into an error carrying the server's
// message and, for 429s, the Retry-After hint.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er errorResponse
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		msg = er.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return fmt.Errorf("server busy (HTTP 429, Retry-After %ss): %s",
			resp.Header.Get("Retry-After"), msg)
	}
	return fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
}

func (c *Client) getJSON(path string, out any) error {
	resp, err := c.http().Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit submits a campaign job.
func (c *Client) Submit(spec JobSpec) (SubmitResponse, error) {
	var out SubmitResponse
	body, err := json.Marshal(spec)
	if err != nil {
		return out, err
	}
	resp, err := c.http().Post(c.Base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return out, apiError(resp)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON("/v1/jobs/"+id, &st)
	return st, err
}

// Jobs lists every job in admission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out []JobStatus
	err := c.getJSON("/v1/jobs", &out)
	return out, err
}

// Result fetches the canonical result document of a completed job.
func (c *Client) Result(id string) ([]byte, error) {
	resp, err := c.http().Get(c.Base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Cancel cancels a job and returns its resulting status.
func (c *Client) Cancel(id string) (JobStatus, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return JobStatus{}, apiError(resp)
	}
	var st JobStatus
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// Watch follows a job's SSE progress stream until it reaches a
// terminal state, writing human-readable progress lines to w (pass
// io.Discard to wait silently). It returns the final status.
func (c *Client) Watch(id string, w io.Writer) (JobStatus, error) {
	resp, err := c.http().Get(c.Base + "/v1/jobs/" + id + "/events")
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return JobStatus{}, apiError(resp)
	}
	var (
		last  JobStatus
		event string
		sc    = bufio.NewScanner(resp.Body)
	)
	var lastLine string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var st JobStatus
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
				return last, fmt.Errorf("bad event payload: %w", err)
			}
			last = st
			if msg := progressLine(st); msg != lastLine {
				fmt.Fprintln(w, msg)
				lastLine = msg
			}
			if event == "done" {
				return last, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	// Stream ended without a done frame (server shutdown or resubmit);
	// report the last status observed.
	if !terminal(last.State) {
		return last, fmt.Errorf("event stream ended with job %s still %s", id, last.State)
	}
	return last, nil
}

// Wait blocks until the job is terminal, discarding progress output.
func (c *Client) Wait(id string) (JobStatus, error) {
	return c.Watch(id, io.Discard)
}

// progressLine renders one status frame for Watch output.
func progressLine(st JobStatus) string {
	msg := fmt.Sprintf("job %s %s: shards %d/%d", shortID(st.ID), st.State,
		st.Shards.Done, st.Shards.Total)
	if st.Error != "" {
		msg += " (" + st.Error + ")"
	}
	return msg
}

// shortID abbreviates a job ID for display.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
