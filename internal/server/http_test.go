package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer starts an in-process HTTP server over a fresh store.
func newTestServer(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	if opt.StoreDir == "" {
		opt.StoreDir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

// TestHTTPSubmitWatchResult drives the full client/server round trip:
// submit, SSE watch to terminal, fetch the canonical result, and
// compare it byte-for-byte with the direct run.
func TestHTTPSubmitWatchResult(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 2})
	spec := JobSpec{Bench: "fft", Trials: 200, Seed: 3, Tenant: "alice"}
	resp, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Deduped {
		t.Fatalf("first submission reported dedup")
	}
	var progress bytes.Buffer
	st, err := c.Watch(resp.ID, &progress)
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Shards.Done != st.Shards.Total || st.Shards.Total == 0 {
		t.Errorf("final shards %d/%d, want all done", st.Shards.Done, st.Shards.Total)
	}
	if !strings.Contains(progress.String(), "done") {
		t.Errorf("watch output missing terminal line: %q", progress.String())
	}
	data, err := c.Result(resp.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if want := directResult(t, spec); !bytes.Equal(data, want) {
		t.Errorf("HTTP result differs from direct run")
	}

	// Second submission from another tenant joins the completed job.
	spec.Tenant = "bob"
	resp2, err := c.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !resp2.Deduped || resp2.ID != resp.ID {
		t.Errorf("cross-tenant resubmit: deduped=%v id=%s, want join of %s",
			resp2.Deduped, resp2.ID, resp.ID)
	}
}

// TestHTTPBackpressure pins the wire form of admission rejection:
// 429 with a Retry-After header.
func TestHTTPBackpressure(t *testing.T) {
	hold := make(chan struct{})
	defer close(hold)
	_, c := newTestServer(t, Options{Workers: 1, MaxActive: 1, MaxQueue: 1, TenantMax: 4, holdJobs: hold})
	for seed := int64(1); seed <= 2; seed++ {
		if _, err := c.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: seed}); err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
	}
	_, err := c.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 3})
	if err == nil {
		t.Fatalf("saturated server admitted a third job")
	}
	if !strings.Contains(err.Error(), "429") || !strings.Contains(err.Error(), "Retry-After") {
		t.Errorf("backpressure error missing 429/Retry-After: %v", err)
	}
}

// TestHTTPCancelAndErrors covers the remaining endpoints: cancel of a
// queued job, 404 on unknown IDs, 409 on a result not yet available,
// and 400 on malformed submissions.
func TestHTTPCancelAndErrors(t *testing.T) {
	hold := make(chan struct{})
	defer close(hold)
	srv, c := newTestServer(t, Options{Workers: 1, MaxActive: 1, MaxQueue: 2, holdJobs: hold})

	if _, err := c.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 1}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	resp, err := c.Submit(JobSpec{Bench: "fft", Trials: 50, Seed: 2})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	// Result of a queued job: 409.
	if _, err := c.Result(resp.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("result of queued job: %v, want HTTP 409", err)
	}
	st, err := c.Cancel(resp.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st.State != StateCanceled {
		t.Errorf("canceled job state %s", st.State)
	}
	if _, err := c.Status("deadbeef"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job status: %v, want HTTP 404", err)
	}
	if _, err := c.Submit(JobSpec{Bench: "fft", Trials: -1, Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("malformed submit: %v, want HTTP 400", err)
	}

	// Stats endpoint exposes the canceled-job counter.
	var stats StatsResponse
	if err := getJSON(t, c, "/v1/stats", &stats); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Counters["server.jobs.canceled"] != 1 {
		t.Errorf("stats canceled counter = %d, want 1", stats.Counters["server.jobs.canceled"])
	}
	_ = srv
}

// getJSON fetches a path through the client's base URL.
func getJSON(t *testing.T, c *Client, path string, out any) error {
	t.Helper()
	return c.getJSON(path, out)
}

// TestHTTPSubmitBodyBounded: a submission body over the cap is cut off
// with 413, not decoded without bound.
func TestHTTPSubmitBodyBounded(t *testing.T) {
	_, c := newTestServer(t, Options{})
	body := strings.NewReader(`{"bench":"` + strings.Repeat("x", maxSubmitBytes+1) + `"}`)
	resp, err := http.Post(c.Base+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("oversized submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized submit status = %d, want %d", resp.StatusCode, http.StatusRequestEntityTooLarge)
	}
}

// TestHTTPHealthz pins the liveness endpoint.
func TestHTTPHealthz(t *testing.T) {
	_, c := newTestServer(t, Options{})
	resp, err := http.Get(c.Base + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
}
