package server

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// shardSpanPrefix names the per-shard spans under a job's span. A
// shard span opens when the shard is dispatched and ends when its
// artifact is committed (or its execution fails), so the span
// subtree's Progress is exactly the job's committed/planned counter.
const shardSpanPrefix = "shard:"

// Options configures a Server.
type Options struct {
	// StoreDir roots the content-addressed artifact store: shard
	// artifacts, job envelopes, and canonical results all live here. A
	// server restarted on the same store resumes every non-terminal
	// job and re-executes only uncommitted shards. Required.
	StoreDir string
	// Workers bounds concurrently executing shards across ALL jobs
	// (0 = GOMAXPROCS). Each shard itself runs single-threaded, so
	// this is the server's total campaign parallelism.
	Workers int
	// MaxActive bounds concurrently running jobs (0 = 2). Queued jobs
	// beyond it wait for a slot in admission order.
	MaxActive int
	// MaxQueue bounds the admission queue (0 = 16). A submission that
	// finds the queue full is rejected with a retry hint.
	MaxQueue int
	// TenantMax bounds one tenant's queued+running jobs (0 = MaxQueue).
	TenantMax int
	// RetryAfterSeconds is the Retry-After hint on admission
	// rejections (0 = 1).
	RetryAfterSeconds int
	// PreemptAfter is a crash-test hook: when positive, every job
	// stops dispatching new shards after this many have committed and
	// parks WITHOUT writing a terminal record — exactly the on-disk
	// state a SIGKILL leaves behind. Tests restart a server on the
	// same store and assert the resumed job re-injects zero faults
	// into committed shards. Never set in production.
	PreemptAfter int
	// Obs receives spans and counters (nil = a private instance).
	Obs *obs.Obs
	// holdJobs, when non-nil, blocks every runJob after its running
	// transition until the channel closes — a test hook that pins jobs
	// in the running state so admission and dedup behavior can be
	// asserted without racing campaign completion.
	holdJobs chan struct{}
}

// Server is the campaign service: admission control, the sharded
// scheduler, and the job store. HTTP transport lives in http.go; the
// methods here are the engine and are directly usable in-process.
type Server struct {
	opt   Options
	pipe  *pipeline.Pipeline
	store *pipeline.DiskStore
	env   pipeline.Env
	ob    *obs.Obs

	mu      sync.Mutex
	jobs    map[string]*Job
	queue   []*Job
	active  int
	tenants map[string]int
	seq     int64
}

// New builds a server over the given store and resumes every
// non-terminal persisted job (queued or running at the time of a
// crash or kill). Resumption is ordered by the jobs' admission
// sequence numbers, so a restart preserves the original order.
func New(opt Options) (*Server, error) {
	if opt.StoreDir == "" {
		return nil, fmt.Errorf("server: StoreDir is required")
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxActive <= 0 {
		opt.MaxActive = 2
	}
	if opt.MaxQueue <= 0 {
		opt.MaxQueue = 16
	}
	if opt.TenantMax <= 0 {
		opt.TenantMax = opt.MaxQueue
	}
	if opt.RetryAfterSeconds <= 0 {
		opt.RetryAfterSeconds = 1
	}
	pipe, err := pipeline.New(pipeline.Options{Workers: opt.Workers, DiskDir: opt.StoreDir})
	if err != nil {
		return nil, err
	}
	store, err := pipeline.NewDiskStore(opt.StoreDir)
	if err != nil {
		return nil, err
	}
	ob := opt.Obs
	if ob == nil {
		ob = obs.New("sdcfid")
	}
	pipe.SetObs(ob)
	s := &Server{
		opt:   opt,
		pipe:  pipe,
		store: store,
		env:   pipeline.Env{Cache: fault.NewCache(0), Metrics: fault.NewMetrics(), Workers: 1},
		ob:    ob,
		jobs:  make(map[string]*Job),
		// tenants counts each tenant's queued+running jobs; joiners of
		// a deduped job are never charged.
		tenants: make(map[string]int),
	}
	s.resume()
	return s, nil
}

// Obs returns the server's observability context (dedup counters,
// job/shard spans, pipeline node traffic).
func (s *Server) Obs() *obs.Obs { return s.ob }

// StoreStats returns the shard store traffic: disk hits are shards
// served from committed artifacts, runs are shards actually executed.
func (s *Server) StoreStats() pipeline.StoreStats { return s.pipe.Stats() }

// RejectError is an admission refusal: the cluster is saturated or
// the tenant is over quota. RetryAfterSeconds is the backpressure
// hint (HTTP maps this to 429 + Retry-After).
type RejectError struct {
	Reason            string
	RetryAfterSeconds int
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("server: rejected: %s (retry after %ds)", e.Reason, e.RetryAfterSeconds)
}

// Submit admits one campaign submission. The returned bool reports a
// dedup join: the spec hashed to a job that already exists (queued,
// running, or done — including results persisted by an earlier server
// on the same store), so this submission costs nothing and is not
// charged against the tenant's quota. Validation failures return a
// plain error; admission refusals return *RejectError.
func (s *Server) Submit(spec JobSpec) (*Job, bool, error) {
	r, err := resolve(spec)
	if err != nil {
		return nil, false, err
	}
	key := jobKey(r)
	id := key.Hex()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state == StateFailed || state == StateCanceled {
			// A failed or canceled job may be resubmitted: it re-enters
			// admission as a fresh attempt under the same identity, charged
			// to the resubmitting tenant.
			if rej := s.admitLocked(j, spec.Tenant); rej != nil {
				return nil, false, rej
			}
			return j, false, nil
		}
		s.ob.Counter("server.dedup.joins").Inc()
		return j, true, nil
	}
	// A completed result persisted by an earlier server process on
	// this store satisfies the submission immediately.
	if res, ok := s.loadResult(key); ok {
		j := newJob(id, key, spec, s.nextSeq())
		j.state = StateDone
		j.result = res
		// A disk-joined job has no span tree to count shards from; its
		// sections ARE its committed shards, so seed total from them and
		// let Status synthesize the matching done count.
		j.total = len(res.Sections)
		close(j.done)
		s.jobs[id] = j
		s.ob.Counter("server.dedup.joins").Inc()
		return j, true, nil
	}
	j := newJob(id, key, spec, s.nextSeq())
	if rej := s.admitLocked(j, spec.Tenant); rej != nil {
		return nil, false, rej
	}
	s.jobs[id] = j
	return j, false, nil
}

// nextSeq issues the next admission sequence number (mu held).
func (s *Server) nextSeq() int64 {
	s.seq++
	return s.seq
}

// admitLocked applies admission control to a new or resubmitted job
// and enqueues it (mu held). The job's state is reset to queued.
// Quota follows the actual submitter: a resubmission of a failed or
// canceled job by a different tenant is checked and charged against
// THAT tenant, and j.Spec.Tenant is updated so the terminal release
// drains the same account.
func (s *Server) admitLocked(j *Job, tenant string) *RejectError {
	if s.tenants[tenant] >= s.opt.TenantMax {
		s.ob.Counter("server.jobs.rejected").Inc()
		return &RejectError{Reason: fmt.Sprintf("tenant %q over quota (%d jobs)", tenant, s.opt.TenantMax),
			RetryAfterSeconds: s.opt.RetryAfterSeconds}
	}
	if len(s.queue) >= s.opt.MaxQueue {
		s.ob.Counter("server.jobs.rejected").Inc()
		return &RejectError{Reason: fmt.Sprintf("queue full (%d jobs)", s.opt.MaxQueue),
			RetryAfterSeconds: s.opt.RetryAfterSeconds}
	}
	j.mu.Lock()
	if terminal(j.state) {
		j.done = make(chan struct{})
	}
	j.state = StateQueued
	j.errMsg = ""
	j.cancel = false
	j.Spec.Tenant = tenant
	j.mu.Unlock()
	s.tenants[tenant]++
	s.ob.Counter("server.jobs.admitted").Inc()
	s.persistRecord(j, StateQueued, "")
	s.queue = append(s.queue, j)
	s.pumpLocked()
	return nil
}

// pumpLocked starts queued jobs while running slots are free (mu held).
// The running transition happens HERE, under s.mu, before the job
// goroutine exists: a Cancel arriving between dispatch and the first
// instruction of runJob must observe StateRunning and take the
// cooperative path, not the queued path (which would drain the tenant
// charge a second time and race finishJob on the done channel).
func (s *Server) pumpLocked() {
	for s.active < s.opt.MaxActive && len(s.queue) > 0 {
		j := s.queue[0]
		s.queue = s.queue[1:]
		s.active++
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		go s.runJob(j)
	}
}

// Cancel cancels a job: dequeued immediately when still queued (its
// queue slot and tenant charge drain right away), or marked so the
// scheduler stops dispatching new shards when running. Committed
// shard artifacts always survive — a resubmission resumes from them.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.tenants[j.Spec.Tenant]--
		s.mu.Unlock()
		s.finishJob(j, StateCanceled, "", nil, false)
		return j, true
	case StateRunning:
		j.requestCancel()
		s.mu.Unlock()
		return j, true
	default:
		s.mu.Unlock()
		return j, true
	}
}

// Jobs snapshots every known job's status, ordered by admission
// sequence.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	list := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, j)
	}
	s.mu.Unlock()
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	out := make([]JobStatus, len(list))
	for i, j := range list {
		out[i] = j.Status()
	}
	return out
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// ---------------------------------------------------------------------
// Scheduler core

// runJob executes one admitted job: plan the sectional campaign,
// dispatch shards across the worker pool, compose, persist. The job is
// already StateRunning — pumpLocked transitions it before spawning.
func (s *Server) runJob(j *Job) {
	s.persistRecord(j, StateRunning, "")
	span := s.ob.Start("job:" + j.Key.Short())
	j.mu.Lock()
	j.span = span
	j.mu.Unlock()
	if s.opt.holdJobs != nil {
		<-s.opt.holdJobs
	}

	res, profiles, plans, err := s.runShards(j, span)
	span.End()
	switch {
	case err != nil:
		s.finishJob(j, StateFailed, err.Error(), nil, false)
	case j.canceled():
		s.finishJob(j, StateCanceled, "", nil, false)
	case s.opt.PreemptAfter > 0 && len(profiles) < len(plans):
		// The crash-test hook stopped dispatch mid-job. Park without a
		// terminal record — on disk the job still reads "running", the
		// state a SIGKILL leaves — so a restarted server resumes it.
		s.finishJob(j, StateFailed,
			fmt.Sprintf("preempted after %d of %d shards (crash-test hook)", len(profiles), len(plans)),
			nil, true)
	default:
		result := BuildResult(j.Spec.Bench, res.input, j.Spec.Seed, j.Spec.Model, res.res, profiles)
		s.persistResult(j, result)
		s.ob.Counter("server.jobs.completed").Inc()
		s.finishJob(j, StateDone, "", result, false)
	}
}

// composed bundles the campaign table with the resolved input's
// canonical rendering (needed by the result document).
type composed struct {
	res   fault.CampaignResult
	input string
}

// runShards plans and executes a job's shards. It returns the
// composed table, the profiles collected so far (all of them on
// success, a prefix under preemption), and the full plan. Dispatch
// stops at the first shard error, a cancel request, or an exhausted
// preemption budget; in-flight shards always drain first.
func (s *Server) runShards(j *Job, span *obs.Span) (composed, []fault.SectionProfile, []fault.SectionTrialPlan, error) {
	r, err := resolve(j.Spec)
	if err != nil {
		return composed{}, nil, nil, err
	}
	model, ok := fault.ModelByName(pipeline.NormModel(j.Spec.Model))
	if !ok {
		return composed{}, nil, nil, fmt.Errorf("unknown fault model %q", j.Spec.Model)
	}
	bind := r.prog.Bind(r.in)
	pm := s.env.Metrics.Phase(fault.PhaseProgramFI)
	golden, err := s.env.Cache.Golden(r.prog.Module, bind, r.prog.Exec, pm)
	if err != nil {
		return composed{}, nil, nil, fmt.Errorf("golden run: %w", err)
	}
	camp := &fault.Campaign{Mod: r.prog.Module, Bind: bind, Cfg: r.prog.Exec,
		Golden: golden, Model: model, Metrics: pm}
	plans := camp.PlanSectional(j.Spec.Trials, j.Spec.Seed, false)
	ctxs := pipeline.SectionContexts(r.prog.Module, golden)
	ctxOf := make(map[string]pipeline.SectionCtx, len(ctxs))
	for _, c := range ctxs {
		ctxOf[c.Sec.Name()] = c
	}
	j.mu.Lock()
	j.total = len(plans)
	j.mu.Unlock()

	// Dispatch: one goroutine per shard, gated by a dispatch window the
	// size of the worker pool so a cancel or preemption takes effect at
	// the next shard boundary instead of after everything is in flight.
	// The pipeline's own slots bound actual execution; committed shards
	// come back as disk hits without costing a single injected fault.
	var (
		wg       sync.WaitGroup
		gate     = make(chan struct{}, s.opt.Workers)
		resMu    sync.Mutex
		profiles = make([]*fault.SectionProfile, len(plans))
		firstErr error
	)
	commit := func(i int, p *fault.SectionProfile, err error) {
		resMu.Lock()
		defer resMu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		profiles[i] = p
	}
	committed := func() int {
		resMu.Lock()
		defer resMu.Unlock()
		n := 0
		for _, p := range profiles {
			if p != nil {
				n++
			}
		}
		return n
	}
	failed := func() bool {
		resMu.Lock()
		defer resMu.Unlock()
		return firstErr != nil
	}
	for i, p := range plans {
		// Acquire the dispatch slot BEFORE the stop checks: at Workers=1
		// this serializes shard boundaries, making the crash-test hook
		// deterministic (exactly PreemptAfter shards commit).
		gate <- struct{}{}
		if j.canceled() || failed() ||
			(s.opt.PreemptAfter > 0 && committed() >= s.opt.PreemptAfter) {
			<-gate
			break
		}
		wg.Add(1)
		task := &pipeline.SectionCharTask{
			Mod: r.prog.Module, Bind: bind, Exec: r.prog.Exec,
			Ctx: ctxOf[p.Sec.Name()], N: p.N, Seed: p.Seed,
			Model: j.Spec.Model, Env: s.env,
		}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-gate }()
			sp := span.Child(shardSpanPrefix + name)
			v, err := s.pipe.Run(task)
			sp.End()
			if err != nil {
				commit(i, nil, fmt.Errorf("shard %s: %w", name, err))
				return
			}
			commit(i, v.(*fault.SectionProfile), nil)
		}(i, p.Sec.Name())
	}
	wg.Wait()
	if firstErr != nil {
		return composed{}, nil, plans, firstErr
	}
	// Collect the committed prefix in plan order (the full set unless
	// dispatch stopped early).
	var flat []fault.SectionProfile
	for _, p := range profiles {
		if p == nil {
			break
		}
		flat = append(flat, *p)
	}
	if len(flat) < len(plans) {
		return composed{}, flat, plans, nil
	}
	res := fault.ComposePlanned(j.Spec.Trials, plans, flat)
	return composed{res: res, input: r.prog.Spec.String(r.in)}, flat, plans, nil
}

// finishJob applies a terminal transition: releases the running slot
// and tenant charge, persists the terminal record (unless parked by
// the crash-test hook), and wakes every waiter. A job that is already
// terminal is left untouched — finishing is single-shot, so two racing
// paths can never double-release accounting or close done twice.
func (s *Server) finishJob(j *Job, state, errMsg string, result *Result, park bool) {
	s.mu.Lock()
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		s.mu.Unlock()
		return
	}
	if j.state == StateRunning {
		// Queued cancels drained their tenant charge in Cancel already.
		s.active--
		s.tenants[j.Spec.Tenant]--
	}
	j.state = state
	j.errMsg = errMsg
	if result != nil {
		j.result = result
	}
	close(j.done)
	j.mu.Unlock()
	if !park {
		s.persistRecord(j, state, errMsg)
	}
	if state == StateCanceled {
		s.ob.Counter("server.jobs.canceled").Inc()
	}
	s.pumpLocked()
	s.mu.Unlock()
}

// ---------------------------------------------------------------------
// Persistence and resumption

// persistRecord writes the job envelope (best effort: a store failure
// degrades resumability, never correctness).
func (s *Server) persistRecord(j *Job, state, errMsg string) {
	rec := jobRecord{ID: j.ID, Spec: j.Spec, State: state, Seq: j.Seq, Error: errMsg}
	data, err := pipeline.EncodeArtifact(kindJob, rec)
	if err == nil {
		err = s.store.Put(kindJob, j.Key, data)
	}
	if err != nil {
		s.ob.Counter("server.store.errors").Inc()
	}
}

// persistResult writes the canonical result artifact.
func (s *Server) persistResult(j *Job, r *Result) {
	data, err := pipeline.EncodeArtifact(kindJobResult, r)
	if err == nil {
		err = s.store.Put(kindJobResult, j.Key, data)
	}
	if err != nil {
		s.ob.Counter("server.store.errors").Inc()
	}
}

// loadResult fetches a persisted canonical result.
func (s *Server) loadResult(key pipeline.Key) (*Result, bool) {
	data, ok := s.store.Get(kindJobResult, key)
	if !ok {
		return nil, false
	}
	var r Result
	if err := pipeline.DecodeArtifact(kindJobResult, data, &r); err != nil {
		return nil, false
	}
	return &r, true
}

// resume re-admits every persisted non-terminal job (the state a
// crash, kill, or preemption left behind), in original admission
// order. Records whose spec no longer hashes to their key — written
// under an older analysis or section schema — are skipped: their
// identity is gone and resubmission would silently change semantics.
func (s *Server) resume() {
	var recs []jobRecord
	for _, key := range s.store.Keys(kindJob) {
		data, ok := s.store.Get(kindJob, key)
		if !ok {
			continue
		}
		var rec jobRecord
		if err := pipeline.DecodeArtifact(kindJob, data, &rec); err != nil {
			continue
		}
		if terminal(rec.State) {
			continue
		}
		r, err := resolve(rec.Spec)
		if err != nil || jobKey(r).Hex() != rec.ID {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Seq < recs[k].Seq })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		r, _ := resolve(rec.Spec)
		key := jobKey(r)
		j := newJob(rec.ID, key, rec.Spec, s.nextSeq())
		s.jobs[rec.ID] = j
		s.ob.Counter("server.jobs.resumed").Inc()
		if rej := s.admitLocked(j, rec.Spec.Tenant); rej != nil {
			// A resumed job over the restart-time quota stays failed; a
			// later resubmission re-enters admission normally.
			j.mu.Lock()
			j.state = StateFailed
			j.errMsg = rej.Error()
			close(j.done)
			j.mu.Unlock()
		}
	}
}
