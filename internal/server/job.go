package server

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Job states. A job is terminal in StateDone, StateFailed, or
// StateCanceled; terminal failed/canceled jobs may be resubmitted.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminal reports whether a state admits no further transitions.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobSpec is one campaign submission. Tenant scopes quota accounting
// only — it is deliberately excluded from the job identity, so two
// tenants submitting the same campaign share one execution.
type JobSpec struct {
	Bench     string `json:"bench"`
	Input     string `json:"input"`                // "ref" (default) or "random"
	InputSeed int64  `json:"input_seed,omitempty"` // seed for Input == "random"
	Trials    int    `json:"trials"`
	Seed      int64  `json:"seed"`
	Model     string `json:"model,omitempty"` // "" = the paper's bitflip
	Tenant    string `json:"tenant,omitempty"`
}

// resolved is a spec bound to its program and concrete input values.
type resolved struct {
	spec JobSpec
	prog *core.Program
	in   inputgen.Input
}

// resolve validates a spec and pins its concrete input. The "random"
// input is drawn deterministically from the input seed, so the same
// spec always resolves to the same input values.
func resolve(spec JobSpec) (*resolved, error) {
	if spec.Trials <= 0 {
		return nil, fmt.Errorf("server: trials must be positive, got %d", spec.Trials)
	}
	prog, err := core.FromBenchmark(spec.Bench)
	if err != nil {
		return nil, err
	}
	var in inputgen.Input
	switch spec.Input {
	case "", "ref":
		in = prog.Reference
	case "random":
		in = prog.RandomInput(rand.New(rand.NewSource(spec.InputSeed)))
	default:
		return nil, fmt.Errorf("server: input must be \"ref\" or \"random\", got %q", spec.Input)
	}
	if _, ok := fault.ModelByName(pipeline.NormModel(spec.Model)); !ok {
		return nil, fmt.Errorf("server: unknown fault model %q", spec.Model)
	}
	return &resolved{spec: spec, prog: prog, in: in}, nil
}

// jobKey derives the content-addressed job identity: benchmark, the
// resolved input values (not the spelling that produced them), trial
// budget, seed, canonical model, and the analysis and section schema
// versions whose changes invalidate campaign semantics. Nothing
// temporal, tenant-scoped, or placement-dependent may enter this hash
// (enforced by the sdclint job-identity rule).
func jobKey(r *resolved) pipeline.Key {
	h := pipeline.NewHasher("job").Str(r.spec.Bench)
	h.I64(int64(len(r.in.I)))
	for _, v := range r.in.I {
		h.I64(v)
	}
	h.I64(int64(len(r.in.F)))
	for _, v := range r.in.F {
		h.F64(v)
	}
	h.I64(int64(r.spec.Trials)).
		I64(r.spec.Seed).
		Str(pipeline.NormModel(r.spec.Model)).
		Str(analysis.Version).
		Str(pipeline.SectionSchema)
	return h.Sum()
}

// Job is the in-memory state of one admitted campaign. Persisted state
// lives in jobRecord; everything here can be rebuilt from the store.
type Job struct {
	ID   string
	Key  pipeline.Key
	Spec JobSpec
	Seq  int64 // admission order (monotonic per server, not wall clock)

	mu     sync.Mutex
	state  string
	errMsg string
	total  int // planned shard count (0 until planning completes)
	result *Result
	cancel bool
	span   *obs.Span
	done   chan struct{} // closed on every terminal transition
}

// newJob builds a queued job.
func newJob(id string, key pipeline.Key, spec JobSpec, seq int64) *Job {
	return &Job{ID: id, Key: key, Spec: spec, Seq: seq,
		state: StateQueued, done: make(chan struct{})}
}

// State returns the current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns the channel closed when the job reaches a terminal
// state. Resubmission replaces it, so callers must re-fetch after a
// wake-up.
func (j *Job) Done() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// Result returns the canonical result (nil unless StateDone).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// requestCancel marks the job for cancellation; the scheduler stops
// dispatching new shards at the next boundary.
func (j *Job) requestCancel() {
	j.mu.Lock()
	j.cancel = true
	j.mu.Unlock()
}

func (j *Job) canceled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// Status snapshots the job for API consumers. Shard progress comes
// from the job's span subtree: one "shard:" child per dispatched
// shard, ended when its artifact committed.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := j.span.Progress(shardSpanPrefix)
	if j.total > p.Total {
		p.Total = j.total
	}
	if j.state == StateDone {
		// Every shard of a done job committed by definition; this also
		// covers results joined from a prior server run, which carry a
		// section count but no span tree.
		p.Done = p.Total
	}
	return JobStatus{
		ID:     j.ID,
		State:  j.state,
		Bench:  j.Spec.Bench,
		Trials: j.Spec.Trials,
		Seed:   j.Spec.Seed,
		Model:  pipeline.NormModel(j.Spec.Model),
		Tenant: j.Spec.Tenant,
		Seq:    j.Seq,
		Shards: p,
		Error:  j.errMsg,
	}
}

// JobStatus is the wire form of a job snapshot.
type JobStatus struct {
	ID     string       `json:"id"`
	State  string       `json:"state"`
	Bench  string       `json:"bench"`
	Trials int          `json:"trials"`
	Seed   int64        `json:"seed"`
	Model  string       `json:"model"`
	Tenant string       `json:"tenant,omitempty"`
	Seq    int64        `json:"seq"`
	Shards obs.Progress `json:"shards"`
	Error  string       `json:"error,omitempty"`
}

// jobRecord is the persisted job envelope (artifact kind "job", keyed
// by the job's content hash). It carries no timestamps: replaying the
// store after a crash must reconstruct the same records byte-for-byte
// regardless of when the replay happens. Seq orders resumption.
type jobRecord struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`
	Seq   int64   `json:"seq"`
	Error string  `json:"error,omitempty"`
}

// Artifact kinds of the job store. Neither carries the "sec" prefix:
// job envelopes survive section-schema bumps (the job key hashes the
// schema, so stale records are simply never matched again).
const (
	kindJob       = "job"
	kindJobResult = "jobresult"
)
