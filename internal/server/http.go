package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/pipeline"
)

// SubmitResponse is the wire reply to a submission.
type SubmitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Deduped bool   `json:"deduped"`
}

// errorResponse is the wire form of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// StatsResponse reports the server's observational state: store
// traffic (disk hits = shards served from committed artifacts) and
// the metrics registry (dedup joins, admissions, rejections).
type StatsResponse struct {
	Store    pipeline.StoreStats `json:"store"`
	Counters map[string]int64    `json:"counters,omitempty"`
}

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs             submit a campaign (202; 200 on dedup
//	                            of a completed job; 429 + Retry-After
//	                            under backpressure)
//	GET    /v1/jobs             list jobs in admission order
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result canonical result document (409 until done)
//	GET    /v1/jobs/{id}/events SSE progress stream until terminal
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/stats            store + metrics counters
//	GET    /v1/healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxSubmitBytes bounds a submission body. A JobSpec is a few hundred
// bytes; anything near the cap is hostile or corrupt, and an unbounded
// decode would let one slow client pin a handler goroutine.
const maxSubmitBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes)).Decode(&spec); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, deduped, err := s.Submit(spec)
	if err != nil {
		var rej *RejectError
		if errors.As(err, &rej) {
			w.Header().Set("Retry-After", strconv.Itoa(rej.RetryAfterSeconds))
			writeError(w, http.StatusTooManyRequests, "%s", rej.Reason)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if deduped && j.State() == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{ID: j.ID, State: j.State(), Deduped: deduped})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	res := j.Result()
	if j.State() != StateDone || res == nil {
		writeError(w, http.StatusConflict, "job %s is %s; result available once done", j.ID, j.State())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(EncodeResult(res))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.ob.Reg.Snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{Store: s.pipe.Stats(), Counters: snap.Counters})
}

// eventsInterval paces SSE progress frames between state changes.
const eventsInterval = 200 * time.Millisecond

// handleEvents streams job progress as server-sent events: one
// "progress" frame per tick (a JobStatus JSON document), then a final
// "done" frame when the job reaches a terminal state. The stream also
// ends when the client disconnects or the job is resubmitted (its
// done channel is replaced; the client re-watches).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, st JobStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	done := j.Done()
	ticker := time.NewTicker(eventsInterval)
	defer ticker.Stop()
	emit("progress", j.Status())
	for {
		select {
		case <-done:
			emit("done", j.Status())
			return
		case <-r.Context().Done():
			return
		case <-ticker.C:
			emit("progress", j.Status())
		}
	}
}
