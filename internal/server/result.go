// Package server implements the fleet-scale campaign service: an
// HTTP/JSON API over a sharded, resumable campaign scheduler. A
// submitted job names a benchmark, an input, a trial budget, a seed,
// and a fault model; the scheduler partitions the campaign into
// per-section shards (the same plan fault.RunSectional executes
// inline), runs them across a bounded worker pool through the
// content-addressed pipeline store, and composes the whole-program SDC
// table. Because every shard is a pure function of its content key,
// jobs are preemptible and resumable: a killed server restarted on the
// same store re-executes only the shards that never committed, and two
// identical submissions — from the same tenant or different ones —
// cost one campaign (DESIGN.md §15).
package server

import (
	"encoding/json"

	"repro/internal/fault"
	"repro/internal/pipeline"
)

// ResultSchema versions the canonical campaign result document.
const ResultSchema = "sdcfi-result/v1"

// SectionLine is one section's slice of the composed campaign in the
// canonical result document, in plan order.
type SectionLine struct {
	Name     string `json:"name"`
	Trials   int64  `json:"trials"`
	SDC      int64  `json:"sdc"`
	Detected int64  `json:"detected"`
}

// Result is the canonical campaign result: the one document both the
// server path and the direct CLI path (-result-out) emit, so CI can
// assert bit-identity between them with a plain byte compare. Field
// order is fixed by the struct and every field is derived from the
// deterministic campaign outcome — never from timing, placement, or
// tenancy.
type Result struct {
	Schema    string        `json:"schema"`
	Bench     string        `json:"bench"`
	Input     string        `json:"input"`
	Seed      int64         `json:"seed"`
	Model     string        `json:"model"`
	Requested int64         `json:"requested"`
	Trials    int64         `json:"trials"`
	Shortfall int64         `json:"shortfall"`
	Benign    int64         `json:"benign"`
	SDC       int64         `json:"sdc"`
	Crash     int64         `json:"crash"`
	Hang      int64         `json:"hang"`
	Detected  int64         `json:"detected"`
	Sections  []SectionLine `json:"sections,omitempty"`
}

// BuildResult folds a composed sectional campaign into the canonical
// result document. Profiles must be in plan order (the order
// RunSectional returns and the scheduler preserves); the model name is
// canonicalized so "" and "bitflip" render identically.
func BuildResult(bench, input string, seed int64, model string,
	res fault.CampaignResult, profiles []fault.SectionProfile) *Result {
	r := &Result{
		Schema:    ResultSchema,
		Bench:     bench,
		Input:     input,
		Seed:      seed,
		Model:     pipeline.NormModel(model),
		Requested: res.Requested,
		Trials:    res.Trials,
		Shortfall: res.Shortfall,
		Benign:    res.Counts[fault.OutcomeBenign],
		SDC:       res.Counts[fault.OutcomeSDC],
		Crash:     res.Counts[fault.OutcomeCrash],
		Hang:      res.Counts[fault.OutcomeHang],
		Detected:  res.Counts[fault.OutcomeDetected],
	}
	for i := range profiles {
		sr := profiles[i].Result()
		r.Sections = append(r.Sections, SectionLine{
			Name:     profiles[i].Name,
			Trials:   sr.Trials,
			SDC:      sr.Counts[fault.OutcomeSDC],
			Detected: sr.Counts[fault.OutcomeDetected],
		})
	}
	return r
}

// EncodeResult renders the canonical byte form of a result: indented
// JSON with a trailing newline. encoding/json emits struct fields in
// declaration order, so equal results encode to equal bytes.
func EncodeResult(r *Result) []byte {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// A Result holds only scalars and slices of scalars; Marshal
		// cannot fail on it.
		panic(err)
	}
	return append(data, '\n')
}
