package passes

import (
	"testing"

	"repro/internal/ir"
)

func TestCSERemovesRedundantExpressions(t *testing.T) {
	m := compile(t, `
func main(x int, y int) {
	emiti((x + y) * 2);
	emiti((x + y) * 2);
	emiti((x + y) * 3);
}`)
	if err := RunPipeline(m, Mem2Reg{}, CSE{}, DCE{}); err != nil {
		t.Fatal(err)
	}
	adds, muls := 0, 0
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpAdd:
			adds++
		case ir.OpMul:
			muls++
		}
	}
	if adds != 1 {
		t.Errorf("adds after CSE = %d, want 1", adds)
	}
	if muls != 2 { // *2 deduplicated, *3 kept
		t.Errorf("muls after CSE = %d, want 2", muls)
	}
	out := runOut(t, m, []uint64{3, 4})
	if int64(out[0]) != 14 || int64(out[1]) != 14 || int64(out[2]) != 21 {
		t.Fatalf("output = %v", out)
	}
}

func TestCSERespectesDominance(t *testing.T) {
	// The same expression computed in two sibling branches must NOT be
	// unified (neither dominates the other).
	m := compile(t, `
func main(x int) {
	if (x > 0) {
		emiti(x * 7);
	} else {
		emiti(x * 7);
	}
}`)
	if err := RunPipeline(m, Mem2Reg{}, CSE{}, DCE{}); err != nil {
		t.Fatal(err)
	}
	muls := 0
	for _, in := range m.Instrs {
		if in.Op == ir.OpMul {
			muls++
		}
	}
	if muls != 2 {
		t.Fatalf("sibling-branch muls = %d, want 2 (no unsound hoisting)", muls)
	}
	for _, x := range []uint64{5, uint64(^uint64(0))} {
		out := runOut(t, m, []uint64{x})
		if int64(out[0]) != int64(x)*7 {
			t.Fatalf("x=%d output %v", int64(x), out)
		}
	}
}

func TestCSEKeepsLoadsAndTraps(t *testing.T) {
	// Loads are memory-dependent (a store may intervene) and divisions can
	// trap: neither may be deduplicated by this pass.
	m := compile(t, `
var g int;
func main(x int) {
	var a int = g;
	g = a + 1;
	var b int = g;    // must re-load: different value
	emiti(a + b);
	emiti(x / 3);
	emiti(x / 3);     // trapping op: left alone
}`)
	if err := RunPipeline(m, Mem2Reg{}, CSE{}); err != nil {
		t.Fatal(err)
	}
	loads, divs := 0, 0
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpLoad:
			loads++
		case ir.OpDiv:
			divs++
		}
	}
	if loads < 2 {
		t.Errorf("loads after CSE = %d, want >= 2", loads)
	}
	if divs != 2 {
		t.Errorf("divs after CSE = %d, want 2", divs)
	}
	out := runOut(t, m, []uint64{9})
	if int64(out[0]) != 1 { // a=0, g becomes 1, b=1
		t.Fatalf("load dedup corrupted memory semantics: %v", out)
	}
}

func TestCSEDifferential(t *testing.T) {
	src := `
func main(n int) {
	var acc int = 0;
	for (var i int = 0; i < n; i = i + 1) {
		acc = acc + (i * 3 + 1) * (i * 3 + 1);
		if (i % 2 == 0) {
			acc = acc - (i * 3 + 1);
		}
	}
	emiti(acc);
}`
	orig := compile(t, src)
	opt := orig.Clone()
	if err := RunPipeline(opt, SimplifyCFG{}, Mem2Reg{}, CSE{}, ConstFold{}, DCE{}, SimplifyCFG{}); err != nil {
		t.Fatal(err)
	}
	if opt.NumInstrs() >= orig.NumInstrs() {
		t.Errorf("CSE pipeline did not shrink: %d -> %d", orig.NumInstrs(), opt.NumInstrs())
	}
	for _, n := range []uint64{0, 1, 9, 30} {
		a := runOut(t, orig, []uint64{n})
		b := runOut(t, opt, []uint64{n})
		if a[0] != b[0] {
			t.Fatalf("n=%d: %d vs %d", n, int64(a[0]), int64(b[0]))
		}
	}
}

func TestCSEIdempotent(t *testing.T) {
	m := compile(t, `func main(x int) { emiti(x + 1); emiti(x + 1); }`)
	if err := RunPipeline(m, Mem2Reg{}, CSE{}); err != nil {
		t.Fatal(err)
	}
	changed, err := (CSE{}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("second CSE run reported changes")
	}
}
