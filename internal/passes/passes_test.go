package passes

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minicc"
)

// compile compiles MiniC source, failing the test on error.
func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := minicc.Compile("t.mc", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m
}

// runOut runs m and returns its output words.
func runOut(t *testing.T, m *ir.Module, args []uint64) []uint64 {
	t.Helper()
	r := interp.NewRunner(m, interp.Config{MaxDynInstrs: 10_000_000})
	res := r.Run(interp.Binding{Args: args}, nil, nil)
	if res.Status != interp.StatusOK {
		t.Fatalf("status = %v (%s)", res.Status, res.Trap)
	}
	return res.Output
}

const mixedSrc = `
func poly(x int) int {
	var a int = 3 * 4 + 1;          // foldable
	var b int = a * x;
	if (2 > 3) {                    // dead branch
		b = b + 1000000;
	}
	var unused int = x * 77;        // dead code
	return b + (10 - 2) / 4;        // foldable tail
}
func main(x int) {
	emiti(poly(x));
	var f float = 2.0 * 3.0 + 1.5;  // float folding
	emitf(f);
}`

func TestOptimizePreservesSemantics(t *testing.T) {
	orig := compile(t, mixedSrc)
	opt := orig.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for _, x := range []uint64{0, 1, 7, 100} {
		a := runOut(t, orig, []uint64{x})
		b := runOut(t, opt, []uint64{x})
		if len(a) != len(b) {
			t.Fatalf("output length changed: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("x=%d output[%d]: %d vs %d", x, i, a[i], b[i])
			}
		}
	}
}

func TestOptimizeShrinksModule(t *testing.T) {
	orig := compile(t, mixedSrc)
	before := orig.NumInstrs()
	if err := Optimize(orig); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	after := orig.NumInstrs()
	if after >= before {
		t.Fatalf("optimization did not shrink module: %d -> %d", before, after)
	}
}

func TestConstFoldFoldsArithmetic(t *testing.T) {
	m := compile(t, `func main() { emiti(2 + 3 * 4 - 1); emitf(1.5 * 2.0); }`)
	if _, err := (ConstFold{}).Run(m); err != nil {
		t.Fatalf("ConstFold: %v", err)
	}
	m.Finalize()
	for _, in := range m.Instrs {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpFMul:
			t.Errorf("unfolded %s survived", in.Op)
		}
	}
	out := runOut(t, m, nil)
	if int64(out[0]) != 13 || math.Float64frombits(out[1]) != 3.0 {
		t.Fatalf("folded output wrong: %v", out)
	}
}

func TestConstFoldKeepsTrappingOps(t *testing.T) {
	// 1/0 must not be folded away or into a constant: the program should
	// still crash at runtime.
	m := ir.NewModule("trap")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	d := b.Bin(ir.OpDiv, ir.ConstI(1), ir.ConstI(0))
	b.CallB(ir.BuiltinEmitI, d)
	b.RetVoid()
	m.Finalize()

	if _, err := (ConstFold{}).Run(m); err != nil {
		t.Fatalf("ConstFold: %v", err)
	}
	m.Finalize()
	r := interp.NewRunner(m, interp.Config{})
	res := r.Run(interp.Binding{}, nil, nil)
	if res.Status != interp.StatusCrash {
		t.Fatalf("status = %v, want crash", res.Status)
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	m := compile(t, `
func main(x int) {
	var a int = x * 2;
	var b int = a + 5;   // b unused -> whole chain dead after DCE+fixpoint
	emiti(x);
}`)
	before := m.NumInstrs()
	if err := RunPipeline(m, DCE{}); err != nil {
		t.Fatalf("DCE: %v", err)
	}
	if m.NumInstrs() >= before {
		t.Fatalf("DCE removed nothing: %d -> %d", before, m.NumInstrs())
	}
	out := runOut(t, m, []uint64{21})
	if int64(out[0]) != 21 {
		t.Fatalf("output = %v", out)
	}
}

func TestDCEKeepsCallsAndStores(t *testing.T) {
	m := compile(t, `
var g int;
func bump() int { g = g + 1; return g; }
func main() {
	bump();       // unused result but side effect must stay
	emiti(g);
}`)
	if err := RunPipeline(m, DCE{}); err != nil {
		t.Fatalf("DCE: %v", err)
	}
	out := runOut(t, m, nil)
	if int64(out[0]) != 1 {
		t.Fatalf("call side effect lost: g = %d, want 1", int64(out[0]))
	}
}

func TestSimplifyCFGRemovesDeadBranch(t *testing.T) {
	m := compile(t, `
func main(x int) {
	if (1 < 2) { emiti(x); } else { emiti(0 - x); }
}`)
	if err := RunPipeline(m, ConstFold{}, SimplifyCFG{}); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	// After folding the comparison and simplifying, no condbr remains in main.
	mainFn := m.Funcs[0]
	for _, b := range mainFn.Blocks {
		if tr := b.Terminator(); tr != nil && tr.Op == ir.OpCondBr {
			t.Fatalf("condbr survived constant folding + simplifycfg")
		}
	}
	out := runOut(t, m, []uint64{9})
	if int64(out[0]) != 9 {
		t.Fatalf("output = %v", out)
	}
}

func TestSimplifyCFGMergesBlocks(t *testing.T) {
	m := compile(t, `func main(x int) { emiti(x); { emiti(x + 1); } emiti(x + 2); }`)
	before := len(m.Funcs[0].Blocks)
	if err := RunPipeline(m, SimplifyCFG{}); err != nil {
		t.Fatalf("SimplifyCFG: %v", err)
	}
	after := len(m.Funcs[0].Blocks)
	if after > before {
		t.Fatalf("block count grew: %d -> %d", before, after)
	}
	out := runOut(t, m, []uint64{5})
	if int64(out[0]) != 5 || int64(out[1]) != 6 || int64(out[2]) != 7 {
		t.Fatalf("output = %v", out)
	}
}

func TestPipelineOnShortCircuitPhis(t *testing.T) {
	// Short-circuit lowering emits phis; the pipeline must keep them correct.
	src := `
func main(a int, b int) {
	if (a > 0 && b > 0) { emiti(1); } else { emiti(0); }
	if (a > 0 || b > 0) { emiti(1); } else { emiti(0); }
}`
	orig := compile(t, src)
	opt := orig.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	for _, args := range [][2]int64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}, {0, 0}} {
		raw := []uint64{uint64(args[0]), uint64(args[1])}
		a := runOut(t, orig, raw)
		b := runOut(t, opt, raw)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("args %v: %v vs %v", args, a, b)
		}
	}
}

func TestSingleAssignmentCheck(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.AddFunction("main", nil, ir.Void)
	b := ir.NewBuilder(m, f)
	x := b.Bin(ir.OpAdd, ir.ConstI(1), ir.ConstI(2))
	// Manually create a second write to the same register.
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs,
		&ir.Instr{Op: ir.OpAdd, Type: ir.I64, Dst: x.Reg, Args: []ir.Operand{ir.ConstI(1), ir.ConstI(1)}})
	b.RetVoid()
	m.Finalize()
	if err := RunPipeline(m, DCE{}); err == nil {
		t.Fatal("RunPipeline accepted multi-assigned registers")
	}
}

// TestOptimizeEquivalenceProperty: for random (x, y) the optimized module
// computes the same result as the original on a program mixing foldable
// arithmetic, branches, loops, and short circuits.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	src := `
func f(x int, y int) int {
	var acc int = 0;
	for (var i int = 0; i < 8; i = i + 1) {
		if (x % 2 == 0 && i % 2 == 0 || y % 3 == 1) {
			acc = acc + i * (2 + 3);
		} else {
			acc = acc - (i + 4 / 2);
		}
	}
	return acc;
}
func main(x int, y int) { emiti(f(x, y)); }`
	orig := compile(t, src)
	opt := orig.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	r1 := interp.NewRunner(orig, interp.Config{})
	r2 := interp.NewRunner(opt, interp.Config{})
	prop := func(x, y int16) bool {
		args := []uint64{uint64(int64(x)), uint64(int64(y))}
		a := r1.Run(interp.Binding{Args: args}, nil, nil)
		b := r2.Run(interp.Binding{Args: args}, nil, nil)
		return a.Status == b.Status && len(a.Output) == 1 &&
			len(b.Output) == 1 && a.Output[0] == b.Output[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadJumpsRemovesForwardingBlocks(t *testing.T) {
	// An if/else whose then-branch is empty produces a forwarding block
	// at -O0; after simplification the CFG should have no block whose
	// only instruction is an unconditional branch (except possibly entry).
	m := compile(t, `
func main(x int) {
	if (x > 3) { } else { emiti(0 - x); }
	emiti(x);
}`)
	if err := RunPipeline(m, Mem2Reg{}, SimplifyCFG{}); err != nil {
		t.Fatal(err)
	}
	for bi, b := range m.Funcs[0].Blocks {
		if bi == 0 {
			continue
		}
		if len(b.Instrs) == 1 && b.Instrs[0].Op == ir.OpBr {
			t.Fatalf("forwarding block bb%d survived simplification", bi)
		}
	}
	for _, args := range []uint64{0, 5} {
		out := runOut(t, m, []uint64{args})
		if args == 0 {
			if int64(out[0]) != 0 || int64(out[1]) != 0 {
				t.Fatalf("x=0 output %v", out)
			}
		} else if int64(out[0]) != 5 {
			t.Fatalf("x=5 output %v", out)
		}
	}
}

func TestThreadJumpsPreservesPhiSemantics(t *testing.T) {
	// Full pipeline on a phi-heavy program: semantics must hold for both
	// branch directions and loop iterations.
	src := `
func pick(a int, b int, c bool) int {
	var r int = a;
	if (c) { } else { r = b; }
	return r;
}
func main(x int) {
	var acc int = 0;
	for (var i int = 0; i < 6; i = i + 1) {
		acc = acc + pick(i, 0 - i, i % 2 == 0);
	}
	emiti(acc);
	emiti(pick(7, 9, x > 0));
}`
	orig := compile(t, src)
	opt := orig.Clone()
	if err := Optimize(opt); err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 1, 100} {
		a := runOut(t, orig, []uint64{x})
		b := runOut(t, opt, []uint64{x})
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("x=%d output[%d]: %d vs %d", x, i, a[i], b[i])
			}
		}
	}
}
