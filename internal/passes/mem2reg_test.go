package passes

import (
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/ir"
)

// runBoth compiles src, runs it unoptimized and after Mem2Reg (+pipeline),
// and asserts identical outputs for the given argument sets.
func runBoth(t *testing.T, src string, argSets [][]uint64) {
	t.Helper()
	orig := compile(t, src)
	opt := orig.Clone()
	if err := RunPipeline(opt, SimplifyCFG{}, Mem2Reg{}, ConstFold{}, DCE{}, SimplifyCFG{}); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	r1 := interp.NewRunner(orig, interp.Config{MaxDynInstrs: 10_000_000})
	r2 := interp.NewRunner(opt, interp.Config{MaxDynInstrs: 10_000_000})
	for _, args := range argSets {
		a := r1.Run(interp.Binding{Args: args}, nil, nil)
		b := r2.Run(interp.Binding{Args: args}, nil, nil)
		if a.Status != b.Status {
			t.Fatalf("args %v: status %v vs %v (%s)", args, a.Status, b.Status, b.Trap)
		}
		if len(a.Output) != len(b.Output) {
			t.Fatalf("args %v: output lengths %d vs %d", args, len(a.Output), len(b.Output))
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("args %v output[%d]: %x vs %x", args, i, a.Output[i], b.Output[i])
			}
		}
		if b.DynInstrs >= a.DynInstrs {
			t.Errorf("args %v: mem2reg did not shrink execution (%d -> %d)", args, a.DynInstrs, b.DynInstrs)
		}
	}
}

func TestMem2RegStraightLine(t *testing.T) {
	runBoth(t, `
func main(x int) {
	var a int = x + 1;
	var b int = a * 2;
	a = b - 3;
	emiti(a + b);
}`, [][]uint64{{0}, {5}, {100}})
}

func TestMem2RegBranches(t *testing.T) {
	runBoth(t, `
func main(x int) {
	var v int = 0;
	if (x > 10) {
		v = x * 2;
	} else {
		if (x > 5) { v = x + 100; }
	}
	emiti(v);
}`, [][]uint64{{0}, {7}, {20}})
}

func TestMem2RegLoops(t *testing.T) {
	runBoth(t, `
func main(n int) {
	var s int = 0;
	var p int = 1;
	for (var i int = 1; i <= n; i = i + 1) {
		s = s + i;
		if (i % 3 == 0) { continue; }
		p = p * 2;
		if (p > 100000) { break; }
	}
	emiti(s);
	emiti(p);
}`, [][]uint64{{0}, {1}, {10}, {50}})
}

func TestMem2RegNestedLoopsAndFloats(t *testing.T) {
	runBoth(t, `
func main(n int) {
	var acc float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		var row float = 0.0;
		for (var j int = 0; j < i; j = j + 1) {
			row = row + float(j) * 0.5;
		}
		acc = acc + row;
	}
	emitf(acc);
}`, [][]uint64{{0}, {3}, {12}})
}

func TestMem2RegSpilledParams(t *testing.T) {
	runBoth(t, `
func f(a int, b int) int {
	a = a + b;
	b = a - b;
	return a * b;
}
func main(x int) { emiti(f(x, 7)); }`, [][]uint64{{0}, {3}, {9}})
}

func TestMem2RegKeepsArraysInMemory(t *testing.T) {
	src := `
func main(n int) {
	var a[8] int;
	for (var i int = 0; i < 8; i = i + 1) { a[i] = i * n; }
	var s int = 0;
	for (var i int = 0; i < 8; i = i + 1) { s = s + a[i]; }
	emiti(s);
}`
	m := compile(t, src)
	if err := RunPipeline(m, Mem2Reg{}); err != nil {
		t.Fatal(err)
	}
	// The 8-word array alloca must survive (only scalars promote).
	arrays := 0
	for _, b := range m.Funcs[0].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Args[0].Kind == ir.OperConst && in.Args[0].Imm == 8 {
				arrays++
			}
		}
	}
	if arrays != 1 {
		t.Fatalf("array alloca count after mem2reg = %d, want 1", arrays)
	}
	out := runOut(t, m, []uint64{3})
	if int64(out[0]) != 3*(0+1+2+3+4+5+6+7) {
		t.Fatalf("output = %v", out)
	}
}

func TestMem2RegRemovesScalarAllocas(t *testing.T) {
	m := compile(t, `
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + i; }
	emiti(s);
}`)
	if err := RunPipeline(m, Mem2Reg{}, DCE{}); err != nil {
		t.Fatal(err)
	}
	for _, in := range m.Instrs {
		if in.Op == ir.OpAlloca {
			t.Fatalf("scalar alloca survived mem2reg: %s", in)
		}
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			t.Fatalf("stack traffic survived mem2reg: %s", in)
		}
	}
	// Phis must have been inserted for the loop-carried variables.
	phis := 0
	for _, in := range m.Instrs {
		if in.Op == ir.OpPhi {
			phis++
		}
	}
	if phis < 2 {
		t.Fatalf("expected loop phis, found %d", phis)
	}
	out := runOut(t, m, []uint64{10})
	if int64(out[0]) != 45 {
		t.Fatalf("output = %v, want [45]", out)
	}
}

func TestMem2RegShortCircuitInteraction(t *testing.T) {
	runBoth(t, `
func main(a int, b int) {
	var r int = 0;
	if (a > 0 && b > 0 || a == b) { r = 1; }
	if (!(a > b)) { r = r + 2; }
	emiti(r);
}`, [][]uint64{{1, 1}, {1, 0}, {0, 0}, {5, 2}, {2, 5}})
}

// Differential property: random inputs over a mixed program agree between
// the -O0 module and the fully optimized (mem2reg included) module.
func TestMem2RegDifferentialProperty(t *testing.T) {
	src := `
func collatz(n int) int {
	var steps int = 0;
	while (n != 1 && steps < 200) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
func main(x int) { emiti(collatz(x % 97 + 2)); }`
	orig := compile(t, src)
	opt := orig.Clone()
	if err := RunPipeline(opt, SimplifyCFG{}, Mem2Reg{}, ConstFold{}, DCE{}, SimplifyCFG{}); err != nil {
		t.Fatal(err)
	}
	r1 := interp.NewRunner(orig, interp.Config{})
	r2 := interp.NewRunner(opt, interp.Config{})
	prop := func(x uint32) bool {
		args := []uint64{uint64(x)}
		a := r1.Run(interp.Binding{Args: args}, nil, nil)
		b := r2.Run(interp.Binding{Args: args}, nil, nil)
		return a.Status == interp.StatusOK && b.Status == interp.StatusOK &&
			a.Output[0] == b.Output[0]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMem2RegIdempotent(t *testing.T) {
	m := compile(t, `
func main(n int) {
	var s int = 0;
	for (var i int = 0; i < n; i = i + 1) { s = s + i; }
	emiti(s);
}`)
	if err := RunPipeline(m, Mem2Reg{}); err != nil {
		t.Fatal(err)
	}
	changed, err := (Mem2Reg{}).Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("second mem2reg run reported changes")
	}
}

func TestMem2RegOnAllMiniCFeatures(t *testing.T) {
	// A stress program exercising every language construct; must verify
	// and agree with the unoptimized module.
	runBoth(t, `
var g int;
func helper(a int, b float) float {
	var acc float = b;
	while (a > 0) {
		acc = acc + 1.5;
		a = a - 1;
	}
	return acc;
}
func main(n int) {
	var total float = 0.0;
	for (var i int = 0; i < n; i = i + 1) {
		if (i % 2 == 0 || i > 7) {
			total = total + helper(i, float(i));
		} else if (i % 3 == 1) {
			total = total - 1.0;
		}
	}
	g = int(total);
	emiti(g);
	emitf(total);
}`, [][]uint64{{0}, {4}, {13}})
}
