package passes

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination: a pure
// instruction whose (opcode, operands) expression was already computed by
// a dominating instruction is deleted and its uses rewritten to the
// earlier result.
//
// CSE is provided as an optional pass (not part of Standard()): fewer
// dynamic instructions shift every profile-derived number, and the
// checked-in experiment results were produced with the standard pipeline.
// Run it via RunPipeline(m, Mem2Reg{}, CSE{}, DCE{}) when a leaner
// instruction stream is wanted.
type CSE struct{}

// Name implements Pass.
func (CSE) Name() string { return "cse" }

// Run implements Pass.
func (CSE) Run(m *ir.Module) (bool, error) {
	changed := false
	for _, f := range m.Funcs {
		if cseFunction(f) {
			changed = true
		}
	}
	return changed, nil
}

// pureKey returns a value-numbering key for in, or "" if the instruction
// is not a candidate (impure, memory-dependent, or potentially trapping —
// removing a second div would be fine semantically, but keeping traps
// untouched keeps the pass trivially safe).
func pureKey(in *ir.Instr) string {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpICmp, ir.OpFCmp, ir.OpIToF, ir.OpSelect, ir.OpGEP,
		ir.OpGlobalAddr, ir.OpArrayLen:
	default:
		return ""
	}
	if !in.HasResult() {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d/%d/%d/%d", in.Op, in.Pred, in.Global, in.Type)
	for _, a := range in.Args {
		fmt.Fprintf(&sb, "|%d:%d:%d:%x", a.Kind, a.Type, a.Reg, a.Imm)
		if a.Kind == ir.OperConstF {
			fmt.Fprintf(&sb, ":%g", a.FImm)
		}
	}
	return sb.String()
}

func cseFunction(f *ir.Function) bool {
	cfg := buildCFG(f)
	replace := map[int]ir.Operand{}
	resolve := func(o ir.Operand) ir.Operand {
		for o.Kind == ir.OperReg {
			r, ok := replace[o.Reg]
			if !ok {
				return o
			}
			o = r
		}
		return o
	}

	changed := false
	// Scoped value table along the dominator tree: walk pushes a child
	// scope per block, so available expressions are exactly those computed
	// by dominators.
	type scopeEntry struct {
		key  string
		prev ir.Operand
		had  bool
	}
	table := map[string]ir.Operand{}

	var walk func(bi int)
	walk = func(bi int) {
		var pushed []scopeEntry
		b := f.Blocks[bi]
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			// Resolve operands through prior replacements first so that
			// chains of redundancy collapse (a+b; a+b; a+b).
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			key := pureKey(in)
			if key == "" {
				keep = append(keep, in)
				continue
			}
			if prior, ok := table[key]; ok {
				replace[in.Dst] = prior
				changed = true
				continue // drop the redundant instruction
			}
			prev, had := table[key]
			pushed = append(pushed, scopeEntry{key: key, prev: prev, had: had})
			table[key] = ir.Reg(in.Dst, in.Type)
			keep = append(keep, in)
		}
		b.Instrs = keep

		for _, child := range cfg.children[bi] {
			walk(child)
		}
		for i := len(pushed) - 1; i >= 0; i-- {
			e := pushed[i]
			if e.had {
				table[e.key] = e.prev
			} else {
				delete(table, e.key)
			}
		}
	}
	walk(0)

	if changed {
		// Rewrite any remaining uses (phis in non-dominated blocks, later
		// operands).
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, a := range in.Args {
					in.Args[i] = resolve(a)
				}
			}
		}
	}
	return changed
}
