// Package passes implements IR-to-IR transformations: constant folding,
// dead-code elimination, and control-flow-graph simplification, plus a
// small pass manager. They stand in for LLVM's optimization pipeline so
// the instruction streams that fault injection and selective duplication
// see are not littered with trivially foldable operations.
//
// All passes require the module to be in single-assignment register form
// (every virtual register written by at most one instruction, parameters
// excluded), which is what the MiniC code generator produces. RunPipeline
// verifies this and re-finalizes/verifies the module after each pass.
package passes

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Pass is a named module transformation. Run reports whether it changed
// the module.
type Pass interface {
	Name() string
	Run(m *ir.Module) (changed bool, err error)
}

// RunPipeline applies the given passes in order, re-finalizing and
// verifying the module after each change. It returns an error if a pass
// fails or produces invalid IR.
func RunPipeline(m *ir.Module, passes ...Pass) error {
	if err := checkSingleAssignment(m); err != nil {
		return err
	}
	for _, p := range passes {
		changed, err := p.Run(m)
		if err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if changed {
			m.Finalize()
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("pass %s produced invalid IR: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// Standard returns the default optimization pipeline used on benchmark
// programs before profiling and protection: the -O1-style sequence that
// yields the register-resident IR LLVM-based SID studies operate on.
func Standard() []Pass {
	return []Pass{
		SimplifyCFG{},
		Mem2Reg{},
		ConstFold{},
		DCE{},
		SimplifyCFG{},
	}
}

// Optimize applies the standard pipeline to m.
func Optimize(m *ir.Module) error { return RunPipeline(m, Standard()...) }

// checkSingleAssignment verifies every register is defined at most once
// per function (parameters are definitions too).
func checkSingleAssignment(m *ir.Module) error {
	for _, f := range m.Funcs {
		defs := make([]int, f.NumRegs)
		for i := range f.Params {
			defs[i]++
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.HasResult() {
					defs[in.Dst]++
					if defs[in.Dst] > 1 {
						return fmt.Errorf("passes: func %s register %%r%d assigned more than once", f.Name, in.Dst)
					}
				}
			}
		}
	}
	return nil
}

// ConstFold evaluates instructions whose operands are all constants and
// propagates the results into their uses, iterating to a fixpoint.
type ConstFold struct{}

// Name implements Pass.
func (ConstFold) Name() string { return "constfold" }

// Run implements Pass.
func (ConstFold) Run(m *ir.Module) (bool, error) {
	changedAny := false
	for _, f := range m.Funcs {
		for {
			consts := map[int]ir.Operand{} // reg -> folded constant
			for _, b := range f.Blocks {
				keep := b.Instrs[:0]
				for _, in := range b.Instrs {
					if c, ok := foldInstr(in); ok {
						consts[in.Dst] = c
						changedAny = true
						continue
					}
					keep = append(keep, in)
				}
				b.Instrs = keep
			}
			if len(consts) == 0 {
				break
			}
			substitute(f, consts)
		}
	}
	return changedAny, nil
}

// substitute replaces register operands with constants throughout f.
func substitute(f *ir.Function, consts map[int]ir.Operand) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a.Kind == ir.OperReg {
					if c, ok := consts[a.Reg]; ok {
						in.Args[i] = c
					}
				}
			}
		}
	}
}

// foldInstr tries to evaluate in at compile time. It never folds
// potentially trapping instructions (div/rem by zero, float-to-int of
// non-finite values) into traps; those are left for runtime.
func foldInstr(in *ir.Instr) (ir.Operand, bool) {
	if !in.HasResult() {
		return ir.Operand{}, false
	}
	for _, a := range in.Args {
		if a.Kind == ir.OperReg || a.Kind == ir.OperNone {
			return ir.Operand{}, false
		}
	}
	ival := func(i int) int64 { return in.Args[i].Imm }
	fval := func(i int) float64 {
		if in.Args[i].Kind == ir.OperConstF {
			return in.Args[i].FImm
		}
		return float64(in.Args[i].Imm)
	}
	switch in.Op {
	case ir.OpAdd:
		return ir.ConstI(ival(0) + ival(1)), true
	case ir.OpSub:
		return ir.ConstI(ival(0) - ival(1)), true
	case ir.OpMul:
		return ir.ConstI(ival(0) * ival(1)), true
	case ir.OpDiv:
		if ival(1) == 0 || (ival(0) == math.MinInt64 && ival(1) == -1) {
			return ir.Operand{}, false
		}
		return ir.ConstI(ival(0) / ival(1)), true
	case ir.OpRem:
		if ival(1) == 0 || (ival(0) == math.MinInt64 && ival(1) == -1) {
			return ir.Operand{}, false
		}
		return ir.ConstI(ival(0) % ival(1)), true
	case ir.OpAnd:
		return ir.ConstI(ival(0) & ival(1)), true
	case ir.OpOr:
		return ir.ConstI(ival(0) | ival(1)), true
	case ir.OpXor:
		return ir.ConstI(ival(0) ^ ival(1)), true
	case ir.OpShl:
		return ir.ConstI(ival(0) << (uint64(ival(1)) & 63)), true
	case ir.OpShr:
		return ir.ConstI(ival(0) >> (uint64(ival(1)) & 63)), true
	case ir.OpFAdd:
		return ir.ConstF(fval(0) + fval(1)), true
	case ir.OpFSub:
		return ir.ConstF(fval(0) - fval(1)), true
	case ir.OpFMul:
		return ir.ConstF(fval(0) * fval(1)), true
	case ir.OpFDiv:
		return ir.ConstF(fval(0) / fval(1)), true
	case ir.OpICmp:
		return constBoolOperand(icmpConst(in.Pred, ival(0), ival(1))), true
	case ir.OpFCmp:
		return constBoolOperand(fcmpConst(in.Pred, fval(0), fval(1))), true
	case ir.OpIToF:
		return ir.ConstF(float64(ival(0))), true
	case ir.OpFToI:
		f := fval(0)
		if math.IsNaN(f) || f >= math.MaxInt64 || f <= math.MinInt64 {
			return ir.Operand{}, false
		}
		return ir.ConstI(int64(f)), true
	case ir.OpSelect:
		if ival(0)&1 != 0 {
			return in.Args[1], true
		}
		return in.Args[2], true
	default:
		return ir.Operand{}, false
	}
}

func constBoolOperand(b bool) ir.Operand { return ir.ConstB(b) }

func icmpConst(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	default:
		return a >= b
	}
}

func fcmpConst(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	default:
		return a >= b
	}
}

// DCE deletes side-effect-free instructions whose results are never used,
// iterating to a fixpoint (deleting one instruction can orphan another).
type DCE struct{}

// Name implements Pass.
func (DCE) Name() string { return "dce" }

// Run implements Pass.
func (DCE) Run(m *ir.Module) (bool, error) {
	changedAny := false
	for _, f := range m.Funcs {
		for {
			if removeDeadStores(f) {
				changedAny = true
			}
			used := make([]bool, f.NumRegs)
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					for _, a := range in.Args {
						if a.Kind == ir.OperReg {
							used[a.Reg] = true
						}
					}
				}
			}
			changed := false
			for _, b := range f.Blocks {
				keep := b.Instrs[:0]
				for _, in := range b.Instrs {
					if in.HasResult() && !used[in.Dst] && deletable(in.Op) {
						changed = true
						changedAny = true
						continue
					}
					keep = append(keep, in)
				}
				b.Instrs = keep
			}
			if !changed {
				break
			}
		}
	}
	return changedAny, nil
}

// deletable reports whether an unused result of op may be removed. Calls
// are kept (callee may have effects); trapping operations are kept so DCE
// never changes a crashing execution into a silent one.
func deletable(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpICmp, ir.OpFCmp, ir.OpIToF, ir.OpSelect, ir.OpGEP,
		ir.OpGlobalAddr, ir.OpArrayLen, ir.OpPhi, ir.OpLoad, ir.OpAlloca:
		return true
	default:
		// Div/Rem/FToI can trap; calls may have side effects.
		return false
	}
}

// removeDeadStores deletes stores whose target is an alloca that is never
// loaded from and whose address never escapes: the alloca register's only
// uses are as the pointer operand of stores. This makes register-level DCE
// effective on the load/store-heavy code the MiniC front end emits.
func removeDeadStores(f *ir.Function) bool {
	escapes := make([]bool, f.NumRegs) // any non-store-pointer use
	isAlloca := make([]bool, f.NumRegs)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Dst >= 0 {
				isAlloca[in.Dst] = true
			}
			for i, a := range in.Args {
				if a.Kind != ir.OperReg {
					continue
				}
				if in.Op == ir.OpStore && i == 1 {
					continue // pure store-target use
				}
				escapes[a.Reg] = true
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				p := in.Args[1]
				if p.Kind == ir.OperReg && isAlloca[p.Reg] && !escapes[p.Reg] {
					changed = true
					continue
				}
			}
			keep = append(keep, in)
		}
		b.Instrs = keep
	}
	return changed
}

// SimplifyCFG removes unreachable blocks, folds constant conditional
// branches, and merges straight-line block pairs.
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (SimplifyCFG) Run(m *ir.Module) (bool, error) {
	changedAny := false
	for _, f := range m.Funcs {
		for {
			changed := false
			if foldConstBranches(f) {
				changed = true
			}
			if threadJumps(f) {
				changed = true
			}
			if removeUnreachable(f) {
				changed = true
			}
			if mergeLinearPairs(f) {
				changed = true
			}
			if changed {
				changedAny = true
				continue
			}
			break
		}
	}
	return changedAny, nil
}

// threadJumps retargets branches through empty forwarding blocks: when C
// contains only "br D", predecessors of C branch to D directly. Phis in D
// that list C as a source are rewritten to list C's predecessors instead
// (skipped on conflicts: a predecessor already supplying D a different
// value). C itself becomes unreachable and is removed by
// removeUnreachable.
func threadJumps(f *ir.Function) bool {
	changed := false
	for ci, c := range f.Blocks {
		if ci == 0 || len(c.Instrs) != 1 {
			continue
		}
		t := c.Instrs[0]
		if t.Op != ir.OpBr || t.Succs[0] == ci {
			continue
		}
		di := t.Succs[0]
		d := f.Blocks[di]

		// Predecessors of C.
		var preds []int
		for pi, p := range f.Blocks {
			pt := p.Terminator()
			if pt == nil || (pt.Op != ir.OpBr && pt.Op != ir.OpCondBr) {
				continue
			}
			for _, s := range pt.Succs {
				if s == ci {
					preds = append(preds, pi)
					break
				}
			}
		}
		if len(preds) == 0 {
			continue
		}

		// Check phi feasibility in D: every phi with an incoming from C
		// must be extendable with each pred of C without conflicting with
		// an existing incoming from that pred.
		feasible := true
		for _, in := range d.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			fromC := -1
			for i, s := range in.Succs {
				if s == ci {
					fromC = i
				}
			}
			if fromC < 0 {
				continue
			}
			for _, p := range preds {
				for i, s := range in.Succs {
					if s == p && in.Args[i] != in.Args[fromC] {
						feasible = false
					}
					_ = i
				}
			}
		}
		if !feasible {
			continue
		}

		// Rewrite phis: replace the C incoming with one incoming per pred
		// (skipping preds already present with the same value).
		for _, in := range d.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			fromC := -1
			for i, s := range in.Succs {
				if s == ci {
					fromC = i
				}
			}
			if fromC < 0 {
				continue
			}
			val := in.Args[fromC]
			// Drop the C entry.
			in.Args = append(in.Args[:fromC], in.Args[fromC+1:]...)
			in.Succs = append(in.Succs[:fromC], in.Succs[fromC+1:]...)
			for _, p := range preds {
				exists := false
				for _, s := range in.Succs {
					if s == p {
						exists = true
					}
				}
				if !exists {
					in.Args = append(in.Args, val)
					in.Succs = append(in.Succs, p)
				}
			}
		}

		// Retarget predecessors.
		for _, p := range preds {
			pt := f.Blocks[p].Terminator()
			for i, s := range pt.Succs {
				if s == ci {
					pt.Succs[i] = di
				}
			}
		}
		changed = true
	}
	return changed
}

// foldConstBranches rewrites condbr with a constant condition into br.
func foldConstBranches(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if t.Args[0].Kind != ir.OperConst {
			continue
		}
		target := t.Succs[1]
		if t.Args[0].Imm&1 != 0 {
			target = t.Succs[0]
		}
		t.Op = ir.OpBr
		t.Args = nil
		t.Succs = []int{target}
		changed = true
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry,
// renumbering the survivors and fixing branch targets and phi incomings.
func removeUnreachable(f *ir.Function) bool {
	reach := make([]bool, len(f.Blocks))
	stack := []int{0}
	reach[0] = true
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := f.Blocks[bi].Terminator()
		if t == nil {
			continue
		}
		for _, s := range t.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	all := true
	for _, r := range reach {
		all = all && r
	}
	if all {
		return false
	}

	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	for _, b := range kept {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				// Drop incomings from removed blocks.
				args := in.Args[:0]
				succs := in.Succs[:0]
				for i, s := range in.Succs {
					if remap[s] >= 0 {
						args = append(args, in.Args[i])
						succs = append(succs, remap[s])
					}
				}
				in.Args = args
				in.Succs = succs
				continue
			}
			for i, s := range in.Succs {
				in.Succs[i] = remap[s]
			}
		}
	}
	for i, b := range kept {
		b.Index = i
	}
	f.Blocks = kept
	return true
}

// mergeLinearPairs merges B into A when A ends in an unconditional branch
// to B and B's only predecessor is A. Phis in B (which must have A as
// their single incoming) are resolved by operand substitution.
func mergeLinearPairs(f *ir.Function) bool {
	changed := false
	for {
		preds := countPreds(f)
		merged := false
		for ai, a := range f.Blocks {
			t := a.Terminator()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			bi := t.Succs[0]
			// Never merge the entry block (it has an implicit predecessor:
			// function entry) or a self-loop.
			if bi == ai || bi == 0 || preds[bi] != 1 {
				continue
			}
			b := f.Blocks[bi]
			// Resolve phis in B: single predecessor A.
			subs := map[int]ir.Operand{}
			rest := b.Instrs[:0]
			ok := true
			for _, in := range b.Instrs {
				if in.Op != ir.OpPhi {
					rest = append(rest, in)
					continue
				}
				val, found := ir.Operand{}, false
				for i, s := range in.Succs {
					if s == ai {
						val, found = in.Args[i], true
						break
					}
				}
				if !found {
					ok = false
					break
				}
				subs[in.Dst] = val
			}
			if !ok {
				continue
			}
			b.Instrs = rest
			if len(subs) > 0 {
				substitute(f, subs)
			}
			// Splice B's instructions after A (dropping A's br).
			a.Instrs = append(a.Instrs[:len(a.Instrs)-1], b.Instrs...)
			// Phis in B's successors referring to B must refer to A now.
			retargetPhiSources(f, bi, ai)
			removeBlockAt(f, bi)
			merged = true
			changed = true
			break
		}
		if !merged {
			return changed
		}
	}
}

// retargetPhiSources rewrites phi incoming-block references from to.
func retargetPhiSources(f *ir.Function, from, to int) {
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.OpPhi {
				continue
			}
			for i, s := range in.Succs {
				if s == from {
					in.Succs[i] = to
				}
			}
		}
	}
}

// removeBlockAt deletes block index bi (which must be unreferenced) and
// renumbers the remaining blocks and their branch targets.
func removeBlockAt(f *ir.Function, bi int) {
	f.Blocks = append(f.Blocks[:bi], f.Blocks[bi+1:]...)
	for i, b := range f.Blocks {
		b.Index = i
	}
	adjust := func(s int) int {
		if s > bi {
			return s - 1
		}
		return s
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, s := range in.Succs {
				in.Succs[i] = adjust(s)
			}
		}
	}
}

// countPreds returns the number of CFG predecessors of each block.
func countPreds(f *ir.Function) []int {
	preds := make([]int, len(f.Blocks))
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		if t.Op == ir.OpBr || t.Op == ir.OpCondBr {
			seen := map[int]bool{}
			for _, s := range t.Succs {
				if !seen[s] {
					preds[s]++
					seen[s] = true
				}
			}
		}
	}
	return preds
}
