package passes

import (
	"sort"

	"repro/internal/ir"
)

// Mem2Reg promotes non-escaping scalar allocas (single-word stack slots
// whose address is used only as a direct load/store pointer) to SSA
// registers, inserting phi nodes at iterated dominance frontiers — the
// classic SSA-construction pass. The MiniC front end spills every local to
// an alloca like clang -O0; running Mem2Reg afterwards produces the
// register-resident IR that LLVM-based SID studies operate on.
type Mem2Reg struct{}

// Name implements Pass.
func (Mem2Reg) Name() string { return "mem2reg" }

// Run implements Pass.
func (Mem2Reg) Run(m *ir.Module) (bool, error) {
	changed := false
	for _, f := range m.Funcs {
		if promoteFunction(f) {
			changed = true
		}
	}
	return changed, nil
}

// cfgInfo caches the per-function control-flow facts SSA construction
// needs.
type cfgInfo struct {
	preds [][]int
	succs [][]int
	// rpo is a reverse postorder over reachable blocks; rpoIndex is the
	// position of each block in it (-1 for unreachable blocks).
	rpo      []int
	rpoIndex []int
	idom     []int   // immediate dominator per block (-1 if unreachable)
	children [][]int // dominator-tree children
	df       [][]int // dominance frontier per block
}

func buildCFG(f *ir.Function) *cfgInfo {
	n := len(f.Blocks)
	c := &cfgInfo{
		preds:    make([][]int, n),
		succs:    make([][]int, n),
		rpoIndex: make([]int, n),
		idom:     make([]int, n),
		children: make([][]int, n),
		df:       make([][]int, n),
	}
	for bi, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		seen := map[int]bool{}
		for _, s := range t.Succs {
			if t.Op != ir.OpBr && t.Op != ir.OpCondBr {
				continue
			}
			if !seen[s] {
				seen[s] = true
				c.succs[bi] = append(c.succs[bi], s)
				c.preds[s] = append(c.preds[s], bi)
			}
		}
	}

	// Reverse postorder via iterative DFS.
	visited := make([]bool, n)
	var post []int
	type stackEntry struct {
		block int
		next  int
	}
	stack := []stackEntry{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(c.succs[top.block]) {
			s := c.succs[top.block][top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, stackEntry{s, 0})
			}
			continue
		}
		post = append(post, top.block)
		stack = stack[:len(stack)-1]
	}
	for i := range c.rpoIndex {
		c.rpoIndex[i] = -1
	}
	for i := len(post) - 1; i >= 0; i-- {
		c.rpoIndex[post[i]] = len(c.rpo)
		c.rpo = append(c.rpo, post[i])
	}

	// Dominators (Cooper-Harvey-Kennedy iterative algorithm).
	for i := range c.idom {
		c.idom[i] = -1
	}
	c.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range c.rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.preds[b] {
				if c.idom[p] < 0 {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = c.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range c.rpo {
		if b != 0 && c.idom[b] >= 0 {
			c.children[c.idom[b]] = append(c.children[c.idom[b]], b)
		}
	}

	// Dominance frontiers.
	for _, b := range c.rpo {
		if len(c.preds[b]) < 2 {
			continue
		}
		for _, p := range c.preds[b] {
			if c.idom[p] < 0 {
				continue
			}
			runner := p
			for runner != c.idom[b] {
				if !contains(c.df[runner], b) {
					c.df[runner] = append(c.df[runner], b)
				}
				runner = c.idom[runner]
			}
		}
	}
	return c
}

// intersect walks two dominator-tree paths to their common ancestor.
func (c *cfgInfo) intersect(a, b int) int {
	for a != b {
		for c.rpoIndex[a] > c.rpoIndex[b] {
			a = c.idom[a]
		}
		for c.rpoIndex[b] > c.rpoIndex[a] {
			b = c.idom[b]
		}
	}
	return a
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// promotedVar is one alloca chosen for promotion.
type promotedVar struct {
	allocaDst int     // the alloca's pointer register
	elem      ir.Type // the slot's value type
	phis      map[int]*ir.Instr
}

// promoteFunction runs SSA construction over f. Reports whether anything
// changed.
func promoteFunction(f *ir.Function) bool {
	cands := findPromotable(f)
	if len(cands) == 0 {
		return false
	}
	cfg := buildCFG(f)

	// Place phis at iterated dominance frontiers of the store blocks.
	vars := make([]*promotedVar, 0, len(cands))
	varOf := make(map[int]*promotedVar) // allocaDst -> var
	for _, pv := range cands {
		pv.phis = make(map[int]*ir.Instr)
		defBlocks := map[int]bool{}
		for bi, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && isPtrTo(in.Args[1], pv.allocaDst) {
					defBlocks[bi] = true
				}
			}
		}
		work := keysOf(defBlocks)
		onFrontier := map[int]bool{}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range cfg.df[b] {
				if onFrontier[d] {
					continue
				}
				onFrontier[d] = true
				phi := &ir.Instr{
					Op:      ir.OpPhi,
					Type:    pv.elem,
					Dst:     f.NumRegs,
					Comment: "mem2reg",
				}
				f.NumRegs++
				pv.phis[d] = phi
				if !defBlocks[d] {
					defBlocks[d] = true
					work = append(work, d)
				}
			}
		}
		vars = append(vars, pv)
		varOf[pv.allocaDst] = pv
	}

	// Insert the phis at block heads (deterministic variable order).
	phiVars := make(map[*ir.Instr]*promotedVar)
	for bi, b := range f.Blocks {
		var newPhis []*ir.Instr
		for _, pv := range vars {
			if phi, ok := pv.phis[bi]; ok {
				newPhis = append(newPhis, phi)
				phiVars[phi] = pv
			}
		}
		if len(newPhis) > 0 {
			b.Instrs = append(newPhis, b.Instrs...)
		}
	}

	// Rename: DFS over the dominator tree with per-variable value stacks.
	replace := make(map[int]ir.Operand) // deleted load dst -> value
	resolve := func(o ir.Operand) ir.Operand {
		for o.Kind == ir.OperReg {
			r, ok := replace[o.Reg]
			if !ok {
				return o
			}
			o = r
		}
		return o
	}

	type frame struct {
		block    int
		childIdx int
		pushed   map[*promotedVar]int // pop counts on exit
	}
	current := make(map[*promotedVar][]ir.Operand)
	for _, pv := range vars {
		// Allocas are zero-initialized; the undef value is typed zero.
		current[pv] = []ir.Operand{zeroOf(pv.elem)}
	}

	var rename func(b int)
	rename = func(bi int) {
		b := f.Blocks[bi]
		pops := make(map[*promotedVar]int)
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				if pv, ok := phiVars[in]; ok {
					current[pv] = append(current[pv], ir.Reg(in.Dst, pv.elem))
					pops[pv]++
				}
				keep = append(keep, in)
			case ir.OpAlloca:
				if _, ok := varOf[in.Dst]; ok {
					continue // drop the promoted alloca
				}
				keep = append(keep, in)
			case ir.OpLoad:
				if pv := varForPtr(in.Args[0], varOf); pv != nil {
					vals := current[pv]
					replace[in.Dst] = resolve(vals[len(vals)-1])
					continue // drop the load
				}
				keep = append(keep, in)
			case ir.OpStore:
				if pv := varForPtr(in.Args[1], varOf); pv != nil {
					current[pv] = append(current[pv], resolve(in.Args[0]))
					pops[pv]++
					continue // drop the store
				}
				keep = append(keep, in)
			default:
				keep = append(keep, in)
			}
		}
		b.Instrs = keep

		// Fill phi incomings of CFG successors.
		for _, s := range cfg.succs[bi] {
			for _, in := range f.Blocks[s].Instrs {
				if in.Op != ir.OpPhi {
					break
				}
				pv, ok := phiVars[in]
				if !ok {
					continue
				}
				vals := current[pv]
				in.Args = append(in.Args, resolve(vals[len(vals)-1]))
				in.Succs = append(in.Succs, bi)
			}
		}
		for _, child := range cfg.children[bi] {
			rename(child)
		}
		for pv, n := range pops {
			current[pv] = current[pv][:len(current[pv])-n]
		}
	}
	rename(0)

	// Rewrite remaining operand uses of deleted loads.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
		}
	}
	return true
}

// findPromotable returns the single-word, non-escaping allocas of f.
func findPromotable(f *ir.Function) []*promotedVar {
	type usage struct {
		alloca  *ir.Instr
		escaped bool
		elem    ir.Type
	}
	use := map[int]*usage{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Dst >= 0 {
				// Only fixed single-slot allocas are promotable.
				if in.Args[0].Kind == ir.OperConst && in.Args[0].Imm == 1 {
					use[in.Dst] = &usage{alloca: in, elem: ir.Void}
				}
			}
		}
	}
	if len(use) == 0 {
		return nil
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a.Kind != ir.OperReg {
					continue
				}
				u, tracked := use[a.Reg]
				if !tracked {
					continue
				}
				switch {
				case in.Op == ir.OpLoad && i == 0:
					if u.elem == ir.Void {
						u.elem = in.Type
					} else if u.elem != in.Type {
						u.escaped = true // mixed-type slot: leave in memory
					}
				case in.Op == ir.OpStore && i == 1:
					vt := in.Args[0].Type
					if u.elem == ir.Void {
						u.elem = vt
					} else if u.elem != vt {
						u.escaped = true
					}
				default:
					u.escaped = true
				}
			}
		}
	}
	var out []*promotedVar
	regs := make([]int, 0, len(use))
	for r := range use {
		regs = append(regs, r)
	}
	sort.Ints(regs)
	for _, r := range regs {
		u := use[r]
		if u.escaped {
			continue
		}
		elem := u.elem
		if elem == ir.Void {
			elem = ir.I64 // never accessed; type irrelevant
		}
		out = append(out, &promotedVar{allocaDst: r, elem: elem})
	}
	return out
}

func isPtrTo(o ir.Operand, reg int) bool {
	return o.Kind == ir.OperReg && o.Reg == reg
}

func varForPtr(o ir.Operand, varOf map[int]*promotedVar) *promotedVar {
	if o.Kind != ir.OperReg {
		return nil
	}
	return varOf[o.Reg]
}

func zeroOf(t ir.Type) ir.Operand {
	switch t {
	case ir.F64:
		return ir.ConstF(0)
	case ir.I1:
		return ir.ConstB(false)
	default:
		return ir.Operand{Kind: ir.OperConst, Type: t, Imm: 0}
	}
}

func keysOf(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
