package pipeline

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/fault"
)

// ReportSchema versions the results/<exp>.json document format.
const ReportSchema = 1

// Report is the machine-readable metrics document every CLI emits: which
// task nodes an invocation touched and how each was satisfied (run, disk
// hit, memory hit), plus the cumulative store and campaign-engine
// accounting. All contents are observational — two runs that differ only
// in Report contents (timings, hit sources) still printed byte-identical
// experiment tables.
type Report struct {
	Schema     int    `json:"schema"`
	Tool       string `json:"tool"`
	Experiment string `json:"experiment,omitempty"`
	Profile    string `json:"profile,omitempty"`
	Seed       int64  `json:"seed"`
	Workers    int    `json:"workers"`
	// FaultModel and Detector record a non-default fault model and
	// detector portfolio; empty for the paper's bitflip + duplication
	// defaults, so default-path reports are byte-identical.
	FaultModel string `json:"fault_model,omitempty"`
	Detector   string `json:"detector,omitempty"`
	// Incremental records that fault-injection artifacts were keyed per
	// program section; omitted (false) for default whole-program runs.
	Incremental bool `json:"incremental,omitempty"`
	// CacheDir is the versioned on-disk artifact directory, empty when the
	// persistent tier was disabled.
	CacheDir string `json:"cache_dir,omitempty"`

	// Nodes lists this invocation's (or experiment's) task nodes in
	// completion order; NodeSummary aggregates them kind -> source -> count.
	Nodes       []NodeMetric              `json:"nodes,omitempty"`
	NodeSummary map[string]map[string]int `json:"node_summary,omitempty"`

	// Store is the pipeline-cumulative artifact-store traffic at emission
	// time; Campaigns is the golden-run/campaign memoization traffic; Phases
	// is the per-phase campaign-engine accounting.
	Store     *StoreStats           `json:"store,omitempty"`
	Campaigns *fault.CacheStats     `json:"campaigns,omitempty"`
	Phases    []fault.PhaseSnapshot `json:"phases,omitempty"`

	// Analysis is the static SDC-masking triage summary (minpsid
	// -analyze), present only when the invocation requested it. Additive
	// and optional, so it shares schema version 1.
	Analysis *analysis.ModuleReport `json:"analysis,omitempty"`

	// Sections is the per-section partition table (minpsid -analyze with
	// -incremental): section shapes, triage aggregates, content-hash
	// prefixes, and artifact cache status. Additive and optional.
	Sections *SectionalAnalysis `json:"sections,omitempty"`
}

// Summarize aggregates node metrics into kind -> source -> count.
func Summarize(nodes []NodeMetric) map[string]map[string]int {
	if len(nodes) == 0 {
		return nil
	}
	out := make(map[string]map[string]int)
	for _, n := range nodes {
		m, ok := out[n.Kind]
		if !ok {
			m = make(map[string]int)
			out[n.Kind] = m
		}
		m[n.Source]++
	}
	return out
}

// WriteReport writes rep as indented JSON to path, creating parent
// directories and writing atomically (temp file + rename).
func WriteReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
