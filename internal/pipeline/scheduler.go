package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Task is one node of the evaluation graph: a pure function of its Key.
// Two tasks with equal keys must compute bit-identical outputs, so the
// scheduler is free to dedup them (single flight), reorder them, and
// serve either from any store tier.
type Task interface {
	// Kind names the node type ("measure", "campaign", ...). It prefixes
	// the key and names the artifact subdirectory.
	Kind() string
	// Key is the canonical content hash of everything that can influence
	// the output. Observational knobs (workers, caches, metrics) are
	// excluded by construction.
	Key() Key
	// Deps lists statically-known prerequisite tasks. They are resolved
	// before Run and their outputs are available via Runtime.Out.
	// Dynamically discovered work is scheduled from inside Run via
	// Runtime.Await.
	Deps() []Task
	// Run computes the output. It must derive everything from the task's
	// own fields and dep outputs.
	Run(rt *Runtime) (any, error)
}

// Persistable marks tasks whose outputs survive in the disk tier. Encode
// and Decode round-trip the output through the versioned JSON envelope.
type Persistable interface {
	Task
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Rehydrator lets a task restore runtime-only state (e.g. attach a golden
// execution to a disk-loaded measurement) after Decode. Rehydrate runs
// under the single flight for the key, so it executes at most once per
// resident artifact.
type Rehydrator interface {
	Rehydrate(rt *Runtime, v any) (any, error)
}

// NodeMetric records how one task node was satisfied. Wall is inclusive:
// for composite nodes (eval) it covers time spent awaiting subtasks.
type NodeMetric struct {
	Kind   string        `json:"kind"`
	Key    string        `json:"key"`    // Short() prefix
	Source string        `json:"source"` // "run", "disk", or "mem"
	Wall   time.Duration `json:"wall_ns"`
}

// Node sources.
const (
	SourceRun  = "run"
	SourceDisk = "disk"
	SourceMem  = "mem"
)

// Options configures a Pipeline.
type Options struct {
	// Workers bounds concurrently *running* tasks (0 = GOMAXPROCS).
	// Tasks waiting on dependencies hold no worker slot.
	Workers int
	// MemEntries bounds the in-memory artifact tier (0 = default).
	MemEntries int
	// DiskDir, if non-empty, enables the persistent artifact tier rooted
	// at this directory.
	DiskDir string
}

// Pipeline executes task graphs with single-flight dedup over a two-tier
// artifact store. Safe for concurrent use.
type Pipeline struct {
	sem chan struct{}

	mu       sync.Mutex
	inflight map[Key]*flight
	mem      *memLRU
	disk     *DiskStore
	nodes    []NodeMetric
	stats    StoreStats
	obs      *obs.Obs
	obsRoot  *obs.Span
}

// flight is one in-progress computation; completed values move to the
// memory tier.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a pipeline. An error is only possible when Options.DiskDir
// is set and cannot be created.
func New(opts Options) (*Pipeline, error) {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pipeline{
		sem:      make(chan struct{}, w),
		inflight: make(map[Key]*flight),
		mem:      newMemLRU(opts.MemEntries),
	}
	if opts.DiskDir != "" {
		if err := p.EnableDisk(opts.DiskDir); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// NewMem builds a memory-only pipeline (never fails).
func NewMem(workers int) *Pipeline {
	p, _ := New(Options{Workers: workers})
	return p
}

// EnableDisk attaches the persistent tier rooted at dir.
func (p *Pipeline) EnableDisk(dir string) error {
	ds, err := NewDiskStore(dir)
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.disk = ds
	p.mu.Unlock()
	return nil
}

// SetObs attaches an observability context. Executed task nodes open
// spans under a lazily created "pipeline" root span, and node traffic is
// counted into the registry. Like Env, obs never participates in task
// keys: enabling it cannot change any output.
func (p *Pipeline) SetObs(o *obs.Obs) {
	p.mu.Lock()
	p.obs = o
	p.obsRoot = nil
	p.mu.Unlock()
}

// taskObs opens the span for one executed node and returns the obs scoped
// to it (nil, nil when observability is off).
func (p *Pipeline) taskObs(t Task, k Key) (*obs.Obs, *obs.Span) {
	p.mu.Lock()
	o := p.obs
	if o == nil {
		p.mu.Unlock()
		return nil, nil
	}
	if p.obsRoot == nil {
		p.obsRoot = o.Start("pipeline")
	}
	root := p.obsRoot
	p.mu.Unlock()
	sp := root.Child(t.Kind())
	sp.SetAttr("key", k.Short())
	return o.At(sp), sp
}

// DiskDir returns the versioned artifact directory, or "" when the disk
// tier is disabled.
func (p *Pipeline) DiskDir() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.disk == nil {
		return ""
	}
	return p.disk.Dir()
}

// Run executes t (scheduling its whole dependency graph) and returns its
// output. Callers needing several independent roots should use RunAll so
// the roots overlap.
func (p *Pipeline) Run(t Task) (any, error) {
	f := p.start(t)
	<-f.done
	return f.val, f.err
}

// RunAll executes the given roots concurrently and returns their outputs
// in order. The first error (in argument order) is returned, but every
// root runs to completion either way.
func (p *Pipeline) RunAll(ts ...Task) ([]any, error) {
	fs := make([]*flight, len(ts))
	for i, t := range ts {
		fs[i] = p.start(t)
	}
	out := make([]any, len(ts))
	var firstErr error
	for i, f := range fs {
		<-f.done
		out[i] = f.val
		if f.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pipeline: %s %s: %w", ts[i].Kind(), ts[i].Key().Short(), f.err)
		}
	}
	return out, firstErr
}

// start returns the (possibly shared) flight computing t.
func (p *Pipeline) start(t Task) *flight {
	k := t.Key()
	p.mu.Lock()
	if v, ok := p.mem.get(k); ok {
		p.stats.MemHits++
		p.mu.Unlock()
		f := &flight{done: make(chan struct{}), val: v}
		close(f.done)
		return f
	}
	if f, ok := p.inflight[k]; ok {
		p.mu.Unlock()
		return f
	}
	f := &flight{done: make(chan struct{})}
	p.inflight[k] = f
	p.mu.Unlock()
	go p.compute(t, k, f)
	return f
}

// compute satisfies one node: disk tier, then dependency resolution, then
// execution under a worker slot, then publication to both tiers.
func (p *Pipeline) compute(t Task, k Key, f *flight) {
	// The node span opens before the disk tier so that warm reruns still
	// record the full task chain; the source attribute tells the two
	// apart. Spans are therefore inclusive of dependency waits.
	to, sp := p.taskObs(t, k)

	// Disk tier.
	if pt, ok := t.(Persistable); ok {
		if v, ok, wall := p.loadDisk(pt, k); ok {
			sp.SetAttr("source", SourceDisk)
			sp.End()
			p.finish(t, k, f, v, nil, SourceDisk, wall, false)
			return
		}
	}

	// Resolve static deps without holding a worker slot.
	deps := t.Deps()
	rt := &Runtime{p: p, deps: make(map[Key]any, len(deps)), holdsSlot: true}
	depFlights := make([]*flight, len(deps))
	for i, d := range deps {
		depFlights[i] = p.start(d)
	}
	for i, df := range depFlights {
		<-df.done
		if df.err != nil {
			sp.End()
			p.finish(t, k, f, nil, fmt.Errorf("dep %s %s: %w",
				deps[i].Kind(), deps[i].Key().Short(), df.err), SourceRun, 0, false)
			return
		}
		rt.deps[deps[i].Key()] = df.val
	}

	// Execute under a worker slot.
	sp.SetAttr("source", SourceRun)
	rt.obs = to
	p.sem <- struct{}{}
	t0 := time.Now()
	v, err := t.Run(rt)
	wall := time.Since(t0)
	<-p.sem
	sp.End()

	persisted := false
	if err == nil {
		persisted = p.storeDisk(t, k, v)
	}
	p.finish(t, k, f, v, err, SourceRun, wall, persisted)
}

// loadDisk tries the persistent tier, decoding and rehydrating on hit.
func (p *Pipeline) loadDisk(t Persistable, k Key) (any, bool, time.Duration) {
	p.mu.Lock()
	disk := p.disk
	p.mu.Unlock()
	if disk == nil {
		return nil, false, 0
	}
	data, ok := disk.Get(t.Kind(), k)
	if !ok {
		return nil, false, 0
	}
	t0 := time.Now()
	v, err := t.Decode(data)
	if err == nil {
		if rh, isRh := t.(Rehydrator); isRh {
			v, err = rh.Rehydrate(&Runtime{p: p}, v)
		}
	}
	if err != nil {
		// A corrupt or stale artifact degrades to a miss and is
		// overwritten by the recompute.
		p.mu.Lock()
		p.stats.DiskErrors++
		p.mu.Unlock()
		return nil, false, 0
	}
	return v, true, time.Since(t0)
}

// storeDisk persists an executed output (best effort).
func (p *Pipeline) storeDisk(t Task, k Key, v any) bool {
	pt, ok := t.(Persistable)
	if !ok {
		return false
	}
	p.mu.Lock()
	disk := p.disk
	p.mu.Unlock()
	if disk == nil {
		return false
	}
	data, err := pt.Encode(v)
	if err == nil {
		err = disk.Put(t.Kind(), k, data)
	}
	if err != nil {
		p.mu.Lock()
		p.stats.DiskErrors++
		p.mu.Unlock()
		return false
	}
	return true
}

// finish publishes a flight's result and records the node metric.
func (p *Pipeline) finish(t Task, k Key, f *flight, v any, err error, source string, wall time.Duration, persisted bool) {
	f.val, f.err = v, err
	p.mu.Lock()
	if err == nil {
		p.mem.add(k, v)
	}
	delete(p.inflight, k)
	p.nodes = append(p.nodes, NodeMetric{Kind: t.Kind(), Key: k.Short(), Source: source, Wall: wall})
	switch source {
	case SourceDisk:
		p.stats.DiskHits++
	case SourceRun:
		if err == nil {
			p.stats.Runs++
		}
	}
	if persisted {
		p.stats.DiskWrites++
	}
	o := p.obs
	p.mu.Unlock()
	o.Counter("pipeline.nodes." + t.Kind() + "." + source).Inc()
	o.Histogram("pipeline.wall_ns." + t.Kind()).Observe(wall.Nanoseconds())
	close(f.done)
}

// Nodes returns a copy of the node metrics recorded so far. Memory-tier
// hits are aggregated in Stats rather than recorded per node (a warm
// in-process rerun would otherwise flood the log).
func (p *Pipeline) Nodes() []NodeMetric {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]NodeMetric(nil), p.nodes...)
}

// NumNodes returns the count of recorded node metrics; use with Nodes to
// slice per-experiment deltas.
func (p *Pipeline) NumNodes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nodes)
}

// Stats returns cumulative store traffic.
func (p *Pipeline) Stats() StoreStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.MemEntries = p.mem.len()
	return s
}

// Runtime is the execution context handed to Task.Run.
type Runtime struct {
	p    *Pipeline
	deps map[Key]any
	// holdsSlot is true inside Task.Run (which executes under a worker
	// slot) and false inside Rehydrate (which does not).
	holdsSlot bool
	// obs is scoped to this task's span; engine work started inside Run
	// nests under it.
	obs *obs.Obs
}

// Out returns the output of a statically-declared dependency.
func (rt *Runtime) Out(t Task) any { return rt.deps[t.Key()] }

// Obs returns the task-scoped observability context (nil when disabled,
// which every downstream consumer treats as a no-op).
func (rt *Runtime) Obs() *obs.Obs { return rt.obs }

// Await schedules dynamically-discovered subtasks and blocks until all
// complete, returning their outputs in order. The caller's worker slot is
// released while waiting, so nested fan-out cannot deadlock the pool even
// at Workers == 1. The first error is returned after all subtasks settle.
func (rt *Runtime) Await(ts ...Task) ([]any, error) {
	fs := make([]*flight, len(ts))
	for i, t := range ts {
		fs[i] = rt.p.start(t)
	}
	// Release this task's slot while blocked; re-acquire before resuming.
	if rt.holdsSlot {
		<-rt.p.sem
		defer func() { rt.p.sem <- struct{}{} }()
	}
	out := make([]any, len(ts))
	var firstErr error
	for i, f := range fs {
		<-f.done
		out[i] = f.val
		if f.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s %s: %w", ts[i].Kind(), ts[i].Key().Short(), f.err)
		}
	}
	return out, firstErr
}
