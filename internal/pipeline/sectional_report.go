package pipeline

import (
	"encoding/hex"
	"fmt"
	"io"
	"math/bits"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/minpsid"
)

// SectionReport is one row of the per-section analysis table (minpsid
// -analyze): the section's static shape, how much of its fault surface
// the triage proves masked, its content-hash prefix, and whether its
// measurement artifact is already present in the disk store.
type SectionReport struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	Blocks     int     `json:"blocks"`
	Instrs     int     `json:"instrs"`
	Injectable int     `json:"injectable"`
	MaskedBits int     `json:"masked_bits"`
	TotalBits  int     `json:"total_bits"`
	MaskedFrac float64 `json:"masked_frac"`
	// Hash is a 16-hex-digit prefix of the section content hash.
	Hash string `json:"content_hash"`
	// Cached reports the secmeasure artifact status under the queried
	// parameters: "hit", "miss", or "-" when no disk store was attached.
	Cached string `json:"cached"`
}

// SectionalAnalysis is the full per-section table of one module.
type SectionalAnalysis struct {
	Module   string          `json:"module"`
	Schema   string          `json:"schema"`
	Sections []SectionReport `json:"sections"`
}

// BuildSectionalAnalysis computes the per-section analysis table of a
// target under one input: the stable section partition, per-section
// triage aggregates, and — when store is non-nil — whether each
// section's per-instruction measurement at (faultsPerInstr, seed, model)
// is already on disk.
func BuildSectionalAnalysis(tgt minpsid.Target, input inputgen.Input,
	faultsPerInstr int, seed int64, model string, store *DiskStore) (*SectionalAnalysis, error) {

	bind := tgt.Bind(input)
	golden, err := fault.RunGolden(tgt.Mod, bind, tgt.Exec)
	if err != nil {
		return nil, fmt.Errorf("pipeline: sectional analysis golden: %w", err)
	}
	tri := analysis.TriageFor(tgt.Mod)
	out := &SectionalAnalysis{Module: tgt.Mod.Name, Schema: SectionSchema}
	for _, c := range SectionContexts(tgt.Mod, golden) {
		sec := c.Sec
		r := SectionReport{
			Name:   sec.Name(),
			Kind:   sec.Kind.String(),
			Blocks: len(sec.Blocks),
			Instrs: len(sec.Instrs),
			Hash:   hex.EncodeToString(c.Content[:8]),
			Cached: "-",
		}
		for _, id := range sec.Instrs {
			in := tgt.Mod.Instrs[id]
			if !in.IsInjectable() {
				continue
			}
			r.Injectable++
			r.TotalBits += int(in.Type.Bits())
			r.MaskedBits += bits.OnesCount64(tri.MaskedBits(id))
		}
		if r.TotalBits > 0 {
			r.MaskedFrac = float64(r.MaskedBits) / float64(r.TotalBits)
		}
		if store != nil {
			task := &SectionMeasureTask{Target: tgt, Input: input, Ctx: c,
				FaultsPerInstr: faultsPerInstr,
				Seed:           fault.SectionSeed(seed, sec.FuncName, sec.SecIdx),
				Model:          model}
			if _, ok := store.Get(task.Kind(), task.Key()); ok {
				r.Cached = "hit"
			} else {
				r.Cached = "miss"
			}
		}
		out.Sections = append(out.Sections, r)
	}
	return out, nil
}

// Render prints the human-readable per-section table (minpsid -analyze
// with -incremental).
func (r *SectionalAnalysis) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sectional partition: %s (%s)\n", r.Module, r.Schema)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Section\tKind\tBlocks\tInstrs\tInjectable\tMasked%\tContentHash\tCached")
	var injectable, masked, total int
	for _, s := range r.Sections {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f%%\t%s\t%s\n",
			s.Name, s.Kind, s.Blocks, s.Instrs, s.Injectable,
			100*s.MaskedFrac, s.Hash, s.Cached)
		injectable += s.Injectable
		masked += s.MaskedBits
		total += s.TotalBits
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	frac := 0.0
	if total > 0 {
		frac = float64(masked) / float64(total)
	}
	_, err := fmt.Fprintf(w, "sections: %d, injectable sites: %d, %d/%d bits provably masked (%.2f%%)\n",
		len(r.Sections), injectable, masked, total, 100*frac)
	return err
}
