// Package pipeline turns the paper's evaluation into an explicit task
// graph: typed, pure task nodes (compile, measure, search, protect,
// campaign, eval) keyed by a canonical content hash, executed by a
// single-flight scheduler on a bounded worker pool, with results held in
// a two-tier artifact store (an in-memory LRU plus an opt-in on-disk
// store under results/cache/ that makes experiment drivers resumable
// across process exits).
//
// Every task is a deterministic function of its key, so any execution
// order, worker count, and cache state (cold, warm, or disabled) yields
// bit-identical artifacts. The scheduler and stores are therefore purely
// observational: they decide only *whether* work re-runs, never what it
// computes.
package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"

	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Key is the canonical content identity of a task's output: a SHA-256
// over the task kind and every input that can influence the result.
// Observational knobs (worker counts, caches, metrics) never participate.
type Key [sha256.Size]byte

// Hex returns the full lowercase hex encoding (artifact file names).
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// Short returns an 16-hex-digit prefix for logs and reports.
func (k Key) Short() string { return hex.EncodeToString(k[:8]) }

// Hasher accumulates key components. Every component is written with a
// type tag and, for variable-length data, a length prefix, so distinct
// component sequences can never collide by concatenation.
type Hasher struct{ h hash.Hash }

// NewHasher starts a key for one task kind.
func NewHasher(kind string) *Hasher {
	h := &Hasher{h: sha256.New()}
	return h.Str(kind)
}

func (h *Hasher) word(tag byte, v uint64) *Hasher {
	var buf [9]byte
	buf[0] = tag
	binary.LittleEndian.PutUint64(buf[1:], v)
	h.h.Write(buf[:])
	return h
}

// Str appends a length-prefixed string component.
func (h *Hasher) Str(s string) *Hasher {
	h.word('s', uint64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// I64 appends an integer component.
func (h *Hasher) I64(v int64) *Hasher { return h.word('i', uint64(v)) }

// F64 appends a float component (by IEEE-754 bits).
func (h *Hasher) F64(v float64) *Hasher { return h.word('f', math.Float64bits(v)) }

// Ints appends a length-prefixed []int component.
func (h *Hasher) Ints(vs []int) *Hasher {
	h.word('I', uint64(len(vs)))
	for _, v := range vs {
		h.word('i', uint64(v))
	}
	return h
}

// Strs appends a length-prefixed []string component.
func (h *Hasher) Strs(vs []string) *Hasher {
	h.word('S', uint64(len(vs)))
	for _, v := range vs {
		h.Str(v)
	}
	return h
}

// F64s appends a length-prefixed []float64 component.
func (h *Hasher) F64s(vs []float64) *Hasher {
	h.word('F', uint64(len(vs)))
	for _, v := range vs {
		h.word('f', math.Float64bits(v))
	}
	return h
}

// Key appends another key as a component (task composition).
func (h *Hasher) Key(k Key) *Hasher {
	h.word('k', uint64(len(k)))
	h.h.Write(k[:])
	return h
}

// Sum finalizes the key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// moduleIdent identifies a module value for hash memoization: modules are
// immutable between Finalize calls, so (pointer, version) pins the content.
type moduleIdent struct {
	m *ir.Module
	v uint64
}

var moduleHashes sync.Map // moduleIdent -> Key

// ModuleHash returns the content hash of a module: a SHA-256 over its
// canonical textual rendering. The hash is memoized per (module pointer,
// version), so repeated keying of the same module is cheap.
func ModuleHash(m *ir.Module) Key {
	id := moduleIdent{m: m, v: m.Version()}
	if k, ok := moduleHashes.Load(id); ok {
		return k.(Key)
	}
	k := NewHasher("module").Str(m.String()).Sum()
	moduleHashes.Store(id, k)
	return k
}

// BindingHash returns the content hash of an input binding (argument
// words plus sorted global arrays), reusing the campaign cache's
// canonical binding identity.
func BindingHash(bind interp.Binding) Key {
	b := fault.BindingKey(bind)
	return NewHasher("binding").Str(string(b[:])).Sum()
}

// ExecHash returns the content hash of an execution config with defaults
// normalized, so a zero config and an explicitly-defaulted one key
// identically. The engine choice is deliberately excluded: all three
// engines (legacy, image, compiled) are pinned bit-identical by the
// three-way differential test suite, so artifacts are shared across
// -engine values. Compiled-artifact caching is keyed separately inside
// internal/interp (module version + compiler version), never here.
func ExecHash(cfg interp.Config) Key {
	h := NewHasher("exec")
	norm := func(v int64, def int64) int64 {
		if v == 0 {
			return def
		}
		return v
	}
	h.I64(norm(cfg.MaxDynInstrs, interp.DefaultMaxDynInstrs))
	h.I64(norm(int64(cfg.StackWords), interp.DefaultStackWords))
	h.I64(norm(int64(cfg.MaxOutputWords), interp.DefaultMaxOutputWords))
	h.I64(norm(int64(cfg.MaxCallDepth), interp.DefaultMaxCallDepth))
	h.I64(norm(int64(cfg.Quantum), interp.DefaultQuantum))
	h.I64(norm(int64(cfg.MaxThreads), interp.DefaultMaxThreads))
	return h.Sum()
}

// SpecHash returns the content hash of an input space: every parameter's
// name, kind, and domain in order.
func SpecHash(spec *inputgen.Spec) Key {
	h := NewHasher("spec")
	h.I64(int64(len(spec.Params)))
	for _, p := range spec.Params {
		h.Str(p.Name).I64(int64(p.Kind))
		h.I64(p.Min).I64(p.Max).F64(p.FMin).F64(p.FMax)
		h.I64(int64(len(p.Choices)))
		for _, c := range p.Choices {
			h.I64(c)
		}
	}
	return h.Sum()
}

// InputHash returns the content hash of one concrete input.
func InputHash(in inputgen.Input) Key {
	h := NewHasher("input")
	h.I64(int64(len(in.I)))
	for _, v := range in.I {
		h.I64(v)
	}
	return h.F64s(in.F).Sum()
}
