package pipeline

// Golden-file test for the per-section analysis renderer (minpsid
// -analyze -incremental) plus a live BuildSectionalAnalysis test pinning
// the cache-status column against a real disk store. Regenerate the
// golden with:
//
//	go test ./internal/pipeline -run TestSectionalRenderGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/minpsid"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestSectionalRenderGolden renders a fixed synthetic table so column
// layout, percentage formatting, and the footer aggregate are pinned
// byte-for-byte.
func TestSectionalRenderGolden(t *testing.T) {
	a := &SectionalAnalysis{
		Module: "synthetic",
		Schema: SectionSchema,
		Sections: []SectionReport{
			{Name: "main#body", Kind: "body", Blocks: 3, Instrs: 40,
				Injectable: 28, MaskedBits: 96, TotalBits: 1792,
				MaskedFrac: 96.0 / 1792, Hash: "00112233aabbccdd", Cached: "hit"},
			{Name: "main#loop1", Kind: "loop", Blocks: 4, Instrs: 31,
				Injectable: 25, MaskedBits: 320, TotalBits: 1600,
				MaskedFrac: 320.0 / 1600, Hash: "8f00ba5e8f00ba5e", Cached: "miss"},
			{Name: "helper", Kind: "func", Blocks: 1, Instrs: 7,
				Injectable: 4, MaskedBits: 0, TotalBits: 256,
				MaskedFrac: 0, Hash: "deadbeef00000000", Cached: "-"},
		},
	}
	var buf bytes.Buffer
	if err := a.Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sectional.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("render drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestBuildSectionalAnalysis pins the live table on a real benchmark:
// totals are consistent, the cache column reads "-" without a store,
// all-"miss" against an empty store, and flips to "hit" for exactly the
// sections whose measurement artifacts a prior incremental run stored.
func TestBuildSectionalAnalysis(t *testing.T) {
	bench, ok := benchprog.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder missing")
	}
	tgt := minpsid.Target{Mod: bench.MustModule(), Spec: bench.Spec,
		Bind: bench.Bind, Exec: bench.ExecConfig()}

	noStore, err := BuildSectionalAnalysis(tgt, bench.Reference, 1, 3, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(noStore.Sections) == 0 {
		t.Fatal("no sections reported")
	}
	if noStore.Schema != SectionSchema {
		t.Errorf("schema %q, want %q", noStore.Schema, SectionSchema)
	}
	for _, s := range noStore.Sections {
		if s.Cached != "-" {
			t.Errorf("%s: cache status %q without a store, want -", s.Name, s.Cached)
		}
		if s.Injectable > s.Instrs || s.MaskedBits > s.TotalBits || len(s.Hash) != 16 {
			t.Errorf("%s: inconsistent row %+v", s.Name, s)
		}
	}

	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := BuildSectionalAnalysis(tgt, bench.Reference, 1, 3, "", store)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cold.Sections {
		if s.Cached != "miss" {
			t.Errorf("%s: cache status %q on empty store, want miss", s.Name, s.Cached)
		}
	}

	// Populate the store by running the incremental measurement at the
	// same (faultsPerInstr, seed, model) parameters, then rebuild.
	p, err := New(Options{Workers: 2, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mt := &MeasureTask{Target: tgt, Input: bench.Reference,
		FaultsPerInstr: 1, Seed: 3, Incremental: true, Env: newEnv()}
	if _, err := p.Run(mt); err != nil {
		t.Fatal(err)
	}
	warm, err := BuildSectionalAnalysis(tgt, bench.Reference, 1, 3, "", store)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range warm.Sections {
		if s.Cached != "hit" {
			t.Errorf("%s: cache status %q after incremental run, want hit", s.Name, s.Cached)
		}
	}

	// A different seed addresses a different artifact universe.
	other, err := BuildSectionalAnalysis(tgt, bench.Reference, 1, 4, "", store)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range other.Sections {
		if s.Cached != "miss" {
			t.Errorf("%s: cache status %q under a different seed, want miss", s.Name, s.Cached)
		}
	}

	// The table serializes under the report schema's "sections" field.
	data, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	var back SectionalAnalysis
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Sections) != len(warm.Sections) || back.Sections[0].Cached != "hit" {
		t.Error("sectional analysis did not round-trip through JSON")
	}
}
