package pipeline

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

// NormModel canonicalizes a fault-model spelling: "" means the paper's
// default model. Task keys hash the canonical form only when it differs
// from the default, so every pre-existing artifact key is unchanged.
func NormModel(name string) string {
	if name == "" {
		return fault.DefaultModel().Name()
	}
	return name
}

// NormDetector canonicalizes a detector-portfolio spec: "" means the
// dup-only portfolio the paper evaluates.
func NormDetector(spec string) string {
	if spec == "" {
		return sid.DefaultDetector().Name()
	}
	return spec
}

// modelFor resolves a canonical model name against the registry.
func modelFor(name string) (fault.Model, error) {
	m, ok := fault.ModelByName(NormModel(name))
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown fault model %q (have %s)",
			name, strings.Join(fault.ModelNames(), ", "))
	}
	return m, nil
}

// Env carries the observational machinery tasks thread into the campaign
// engine: the in-memory golden-run/campaign cache, the per-phase metrics
// collector, and the intra-campaign worker bound. Env never participates
// in task keys — results are bit-identical for every Env.
type Env struct {
	Cache   *fault.Cache
	Metrics *fault.Metrics
	Workers int
}

// ---------------------------------------------------------------------
// CompileTask

// CompileTask loads (and verifies) a benchmark's IR module.
type CompileTask struct {
	Bench *benchprog.Benchmark
}

// Kind implements Task.
func (t *CompileTask) Kind() string { return "compile" }

// Key implements Task. Benchmark sources are compiled into this binary,
// so the name pins the content; the output is never persisted.
func (t *CompileTask) Key() Key { return NewHasher("compile").Str(t.Bench.Name).Sum() }

// Deps implements Task.
func (t *CompileTask) Deps() []Task { return nil }

// Run implements Task.
func (t *CompileTask) Run(rt *Runtime) (any, error) { return t.Bench.Module() }

// ---------------------------------------------------------------------
// MeasureTask

// MeasureOut is the reference per-instruction FI measurement plus its
// wall time (component ① of the Fig. 8 breakdown). When loaded from
// disk, Wall reports the original measurement's cost, so timing tables
// render identically on warm reruns.
type MeasureOut struct {
	Meas *sid.Measurement
	Wall time.Duration
}

// MeasureTask runs per-instruction fault injection of a module under one
// input (the SID preparation measurement, steps 1-2 of the paper's
// Fig. 4).
type MeasureTask struct {
	Target         minpsid.Target
	Input          inputgen.Input
	FaultsPerInstr int
	Seed           int64
	// Model names the fault model the measurement campaign injects
	// ("" = the paper's single-bit flip).
	Model string
	// Incremental runs the measurement sectionally: one sub-task per
	// section, keyed by section content (not module), composed into the
	// same Measurement shape. Off by default — the flag extends the key,
	// so every default artifact key is byte-identical to before.
	Incremental bool
	Env         Env
}

// Kind implements Task.
func (t *MeasureTask) Kind() string { return "measure" }

// Key implements Task. The analysis version participates because the
// campaign engine consults the static triage when classifying trials:
// a triage rule change must invalidate persisted measurements even
// though a sound triage cannot change them (defense against an unsound
// revision silently reusing stale artifacts).
func (t *MeasureTask) Key() Key {
	h := NewHasher("measure").
		Key(ModuleHash(t.Target.Mod)).
		Key(BindingHash(t.Target.Bind(t.Input))).
		Key(ExecHash(t.Target.Exec)).
		I64(int64(t.FaultsPerInstr)).
		I64(t.Seed).
		Str(analysis.Version)
	// Non-default models extend the key; the default path keys exactly as
	// before, so persisted default artifacts stay valid.
	if m := NormModel(t.Model); m != fault.DefaultModel().Name() {
		h.Str("model").Str(m)
	}
	// Incremental measurements draw from per-section RNG sub-streams, so
	// they are a distinct artifact; the section schema version retires
	// them when the sectioning contract changes.
	if t.Incremental {
		h.Str("incremental").Str(SectionSchema)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *MeasureTask) Deps() []Task { return nil }

// Run implements Task.
func (t *MeasureTask) Run(rt *Runtime) (any, error) {
	if t.Incremental {
		return t.runIncremental(rt)
	}
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	meas, err := sid.Measure(t.Target.Mod, t.Target.Bind(t.Input), sid.Config{
		Exec:           t.Target.Exec,
		FaultsPerInstr: t.FaultsPerInstr,
		Seed:           t.Seed,
		Model:          model,
		Workers:        t.Env.Workers,
		Cache:          t.Env.Cache,
		Metrics:        t.Env.Metrics.Phase(fault.PhaseRefFI),
		Obs:            rt.Obs(),
	})
	if err != nil {
		return nil, err
	}
	return &MeasureOut{Meas: meas, Wall: time.Since(t0)}, nil
}

// measureArtifact is the persisted form. The golden run (output + full
// dynamic profile) is deliberately not stored: it is large and is
// regenerated deterministically in one fault-free execution on load.
type measureArtifact struct {
	Cost    []float64 `json:"cost"`
	DynFrac []float64 `json:"dyn_frac"`
	SDCProb []float64 `json:"sdc_prob"`
	Benefit []float64 `json:"benefit"`
	WallNS  int64     `json:"wall_ns"`
}

// Encode implements Persistable.
func (t *MeasureTask) Encode(v any) ([]byte, error) {
	out := v.(*MeasureOut)
	return encodeArtifact(t.Kind(), measureArtifact{
		Cost:    out.Meas.Cost,
		DynFrac: out.Meas.DynFrac,
		SDCProb: out.Meas.SDCProb,
		Benefit: out.Meas.Benefit,
		WallNS:  out.Wall.Nanoseconds(),
	})
}

// Decode implements Persistable.
func (t *MeasureTask) Decode(data []byte) (any, error) {
	var a measureArtifact
	if err := decodeArtifact(t.Kind(), data, &a); err != nil {
		return nil, err
	}
	if len(a.Benefit) != t.Target.Mod.NumInstrs() {
		return nil, fmt.Errorf("pipeline: measurement arity %d, module has %d instrs",
			len(a.Benefit), t.Target.Mod.NumInstrs())
	}
	return &MeasureOut{
		Meas: &sid.Measurement{Cost: a.Cost, DynFrac: a.DynFrac, SDCProb: a.SDCProb, Benefit: a.Benefit},
		Wall: time.Duration(a.WallNS),
	}, nil
}

// Rehydrate implements Rehydrator: instruction selection and the input
// search both need the reference golden profile, which is not persisted;
// one deterministic fault-free run restores it.
func (t *MeasureTask) Rehydrate(rt *Runtime, v any) (any, error) {
	out := v.(*MeasureOut)
	golden, err := t.Env.Cache.Golden(t.Target.Mod, t.Target.Bind(t.Input), t.Target.Exec,
		t.Env.Metrics.Phase(fault.PhaseRefFI))
	if err != nil {
		return nil, err
	}
	out.Meas.Golden = golden
	return out, nil
}

// ---------------------------------------------------------------------
// SearchTask

// SearchTask runs the MINPSID incubative-instruction input search
// (steps 3-7 of Fig. 4) on top of a reference measurement.
type SearchTask struct {
	Target minpsid.Target
	Ref    inputgen.Input
	// Cfg shapes the search. Only Canonical() parameter fields reach the
	// key and the engine; cache/metrics/workers come from Env.
	Cfg     minpsid.Config
	Measure *MeasureTask
	Env     Env
}

// Kind implements Task.
func (t *SearchTask) Kind() string { return "search" }

// Key implements Task.
func (t *SearchTask) Key() Key {
	c := t.Cfg.Canonical()
	return NewHasher("search").
		Key(ModuleHash(t.Target.Mod)).
		Key(BindingHash(t.Target.Bind(t.Ref))).
		Key(ExecHash(t.Target.Exec)).
		Key(SpecHash(t.Target.Spec)).
		F64(c.Rule.BottomFrac).F64(c.Rule.EscapeFrac).
		I64(int64(c.FaultsPerInstr)).
		I64(int64(c.MaxInputs)).
		I64(int64(c.Patience)).
		I64(int64(c.PopSize)).
		I64(int64(c.MaxGenerations)).
		F64(c.MutationRate).
		F64(c.CrossoverRate).
		Str(c.Strategy.String()).
		I64(c.Seed).
		Sum()
}

// Deps implements Task.
func (t *SearchTask) Deps() []Task { return []Task{t.Measure} }

// Run implements Task.
func (t *SearchTask) Run(rt *Runtime) (any, error) {
	mo := rt.Out(t.Measure).(*MeasureOut)
	cfg := t.Cfg.Canonical()
	cfg.Cache = t.Env.Cache
	cfg.Metrics = t.Env.Metrics
	cfg.Workers = t.Env.Workers
	cfg.Obs = rt.Obs()
	return minpsid.Search(t.Target, cfg, t.Ref, mo.Meas), nil
}

// searchArtifact is the persisted form of a SearchResult.
type searchArtifact struct {
	Incubative   []int           `json:"incubative"`
	MaxBenefit   []float64       `json:"max_benefit"`
	Trace        []tracePoint    `json:"trace"`
	Inputs       []inputArtifact `json:"inputs"`
	FitnessEvals int             `json:"fitness_evals"`
	EngineNS     int64           `json:"engine_ns"`
	FINS         int64           `json:"fi_ns"`
}

type tracePoint struct {
	InputIndex int     `json:"i"`
	Incubative int     `json:"inc"`
	Fitness    float64 `json:"fit"`
}

type inputArtifact struct {
	I []int64   `json:"i,omitempty"`
	F []float64 `json:"f,omitempty"`
}

// Encode implements Persistable.
func (t *SearchTask) Encode(v any) ([]byte, error) {
	sr := v.(*minpsid.SearchResult)
	a := searchArtifact{
		Incubative:   sr.Incubative,
		MaxBenefit:   sr.MaxBenefit,
		FitnessEvals: sr.FitnessEvals,
		EngineNS:     sr.EngineTime.Nanoseconds(),
		FINS:         sr.FITime.Nanoseconds(),
	}
	for _, tp := range sr.Trace {
		a.Trace = append(a.Trace, tracePoint{InputIndex: tp.InputIndex, Incubative: tp.Incubative, Fitness: tp.Fitness})
	}
	for _, in := range sr.Inputs {
		a.Inputs = append(a.Inputs, inputArtifact{I: in.I, F: in.F})
	}
	return encodeArtifact(t.Kind(), a)
}

// Decode implements Persistable.
func (t *SearchTask) Decode(data []byte) (any, error) {
	var a searchArtifact
	if err := decodeArtifact(t.Kind(), data, &a); err != nil {
		return nil, err
	}
	if len(a.MaxBenefit) != t.Target.Mod.NumInstrs() {
		return nil, fmt.Errorf("pipeline: search arity %d, module has %d instrs",
			len(a.MaxBenefit), t.Target.Mod.NumInstrs())
	}
	sr := &minpsid.SearchResult{
		Incubative:   a.Incubative,
		MaxBenefit:   a.MaxBenefit,
		FitnessEvals: a.FitnessEvals,
		EngineTime:   time.Duration(a.EngineNS),
		FITime:       time.Duration(a.FINS),
	}
	for _, tp := range a.Trace {
		sr.Trace = append(sr.Trace, minpsid.TracePoint{InputIndex: tp.InputIndex, Incubative: tp.Incubative, Fitness: tp.Fitness})
	}
	for _, in := range a.Inputs {
		sr.Inputs = append(sr.Inputs, inputgen.Input{I: in.I, F: in.F})
	}
	return sr, nil
}

// ---------------------------------------------------------------------
// ProtectTask

// ProtectOut bundles a protected binary with everything true-coverage
// replay needs: the original module, the selection, and the static
// instruction-ID mapping.
type ProtectOut struct {
	Orig *ir.Module
	Mod  *ir.Module
	IDs  map[int]int
	Sel  sid.Selection
}

// ProtectTask selects instructions under a protection-level budget and
// applies the duplication transform. With Search set it re-prioritizes
// incubative instructions first (MINPSID); without it this is baseline
// SID. The output holds module pointers and is recomputed (cheaply, no
// fault injection) rather than persisted.
type ProtectTask struct {
	Target  minpsid.Target
	Level   float64
	Measure *MeasureTask
	Search  *SearchTask // nil = baseline SID
	// Detector is the detector-portfolio spec ("" or "dup" = the legacy
	// duplication-everywhere transform; "dup,inv,cfgsig" or "all" selects
	// per site via the multi-choice knapsack). Model names the fault
	// model the portfolio's coverage estimates assume.
	Detector string
	Model    string
	Env      Env
}

// Kind implements Task.
func (t *ProtectTask) Kind() string { return "protect" }

// Key implements Task.
func (t *ProtectTask) Key() Key {
	h := NewHasher("protect").Key(t.Measure.Key()).F64(t.Level)
	if t.Search != nil {
		h.Str("minpsid").Key(t.Search.Key())
	} else {
		h.Str("sid")
	}
	// A non-default portfolio changes both the selection (coverage-scaled
	// benefits under the model) and the lowering; the default keys as
	// before. The model alone does not extend the key here: with the
	// dup-only portfolio it influences protection only through the
	// measurement, which Measure.Key already pins.
	if d := NormDetector(t.Detector); d != sid.DefaultDetector().Name() {
		h.Str("detector").Str(d).Str(NormModel(t.Model))
	}
	return h.Sum()
}

// Deps implements Task.
func (t *ProtectTask) Deps() []Task {
	if t.Search == nil {
		return []Task{t.Measure}
	}
	return []Task{t.Measure, t.Search}
}

// Run implements Task.
func (t *ProtectTask) Run(rt *Runtime) (any, error) {
	meas := rt.Out(t.Measure).(*MeasureOut).Meas
	if t.Search != nil {
		sr := rt.Out(t.Search).(*minpsid.SearchResult)
		meas = minpsid.Reprioritize(meas, sr)
	}
	if d := NormDetector(t.Detector); d != sid.DefaultDetector().Name() {
		portfolio, err := sid.ParsePortfolio(d)
		if err != nil {
			return nil, err
		}
		model, err := modelFor(t.Model)
		if err != nil {
			return nil, err
		}
		sel := sid.SelectPortfolio(t.Target.Mod, meas, t.Level, sid.MethodDP, portfolio, model)
		mod := sid.LowerSelection(t.Target.Mod, sel)
		return &ProtectOut{
			Orig: t.Target.Mod,
			Mod:  mod,
			IDs:  sid.InstrMap(t.Target.Mod, mod),
			Sel:  sel,
		}, nil
	}
	// Default portfolio: the legacy single-detector path, kept verbatim so
	// the paper's defaults remain byte-identical.
	sel := sid.Select(t.Target.Mod, meas, t.Level, sid.MethodDP)
	return &ProtectOut{
		Orig: t.Target.Mod,
		Mod:  sid.Duplicate(t.Target.Mod, sel.Chosen),
		IDs:  sid.ProtectedMap(t.Target.Mod, sel.Chosen),
		Sel:  sel,
	}, nil
}

// ---------------------------------------------------------------------
// InputsTask

// InputsTask draws n fresh admissible evaluation inputs (the paper's
// input filtering, §III-A2). Admissibility requires a fault-free golden
// run, which primes the campaign cache for the coverage evaluation of
// the same inputs.
type InputsTask struct {
	Target minpsid.Target
	N      int
	Seed   int64
	Env    Env
}

// Kind implements Task.
func (t *InputsTask) Kind() string { return "inputs" }

// Key implements Task.
func (t *InputsTask) Key() Key {
	return NewHasher("inputs").
		Key(ModuleHash(t.Target.Mod)).
		Key(ExecHash(t.Target.Exec)).
		Key(SpecHash(t.Target.Spec)).
		I64(int64(t.N)).
		I64(t.Seed).
		Sum()
}

// Deps implements Task.
func (t *InputsTask) Deps() []Task { return nil }

// Run implements Task.
func (t *InputsTask) Run(rt *Runtime) (any, error) {
	rng := rand.New(rand.NewSource(t.Seed))
	pm := t.Env.Metrics.Phase(fault.PhaseEvaluation)
	var out []inputgen.Input
	for tries := 0; len(out) < t.N && tries < t.N*50; tries++ {
		in := t.Target.Spec.Random(rng)
		if _, err := t.Env.Cache.Golden(t.Target.Mod, t.Target.Bind(in), t.Target.Exec, pm); err != nil {
			continue
		}
		out = append(out, in)
	}
	return out, nil
}

// inputsArtifact is the persisted form.
type inputsArtifact struct {
	Inputs []inputArtifact `json:"inputs"`
}

// Encode implements Persistable.
func (t *InputsTask) Encode(v any) ([]byte, error) {
	ins := v.([]inputgen.Input)
	a := inputsArtifact{}
	for _, in := range ins {
		a.Inputs = append(a.Inputs, inputArtifact{I: in.I, F: in.F})
	}
	return encodeArtifact(t.Kind(), a)
}

// Decode implements Persistable.
func (t *InputsTask) Decode(data []byte) (any, error) {
	var a inputsArtifact
	if err := decodeArtifact(t.Kind(), data, &a); err != nil {
		return nil, err
	}
	var out []inputgen.Input
	for _, in := range a.Inputs {
		out = append(out, inputgen.Input{I: in.I, F: in.F})
	}
	return out, nil
}

// ---------------------------------------------------------------------
// CampaignTask

// CoverageOut is one true-coverage measurement. Ok is false when the
// input is inadmissible or no SDC fault was observed (coverage
// undefined) — a deterministic property of the key, so it persists too.
type CoverageOut struct {
	Cov       float64 `json:"cov"`
	Ok        bool    `json:"ok"`
	Trials    int64   `json:"trials"`
	SDCFaults int64   `json:"sdc_faults"`
	Mitigated int64   `json:"mitigated"`
}

// CampaignTask measures the paper-definition SDC coverage of one
// protection under one input binding: faults are sampled on the original
// program and the SDC-producing ones replayed against the protected
// binary. The key is content-addressed on (original module, selection,
// binding, trials, seed) — NOT on technique or level — so two techniques
// that select the same instructions share one campaign, within a run and
// across runs.
type CampaignTask struct {
	Prot   *ProtectOut
	Bind   interp.Binding
	Exec   interp.Config
	Trials int
	Seed   int64
	// Model names the fault model both campaign phases inject ("" = the
	// paper's single-bit flip).
	Model string
	// Incremental computes phase 1 sectionally (per-section sub-tasks
	// keyed by section content) and replays phase 2 through the shared
	// fault.ReplayCoverage path. Off by default; extends the key only
	// when set.
	Incremental bool
	Env         Env
}

// Kind implements Task.
func (t *CampaignTask) Kind() string { return "campaign" }

// Key implements Task. analysis.Version is hashed for the same reason
// as in MeasureTask.Key: triage revisions invalidate cached campaigns.
func (t *CampaignTask) Key() Key {
	h := NewHasher("campaign").
		Key(ModuleHash(t.Prot.Orig)).
		Ints(t.Prot.Sel.Chosen)
	// Heterogeneous selections produce different protected binaries from
	// the same chosen set, so the per-site detector assignment is part of
	// the campaign identity. A nil slice (duplication everywhere) adds
	// nothing, keeping legacy keys byte-identical.
	if len(t.Prot.Sel.Detectors) > 0 {
		h.Strs(t.Prot.Sel.Detectors)
	}
	h.Key(BindingHash(t.Bind)).
		Key(ExecHash(t.Exec)).
		I64(int64(t.Trials)).
		I64(t.Seed).
		Str(analysis.Version)
	if m := NormModel(t.Model); m != fault.DefaultModel().Name() {
		h.Str("model").Str(m)
	}
	if t.Incremental {
		h.Str("incremental").Str(SectionSchema)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *CampaignTask) Deps() []Task { return nil }

// Run implements Task.
func (t *CampaignTask) Run(rt *Runtime) (any, error) {
	if t.Incremental {
		return t.runIncremental(rt)
	}
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	res, err := fault.TrueCoverageOpts(t.Prot.Orig, t.Prot.Mod, t.Prot.IDs, t.Bind, t.Exec, fault.CoverageOptions{
		Trials:  t.Trials,
		Seed:    t.Seed,
		Model:   model,
		Workers: t.Env.Workers,
		Cache:   t.Env.Cache,
		Metrics: t.Env.Metrics.Phase(fault.PhaseEvaluation),
		Obs:     rt.Obs(),
	})
	if err != nil {
		// Inadmissible input: deterministically undefined, not a failure.
		return &CoverageOut{}, nil
	}
	cov, ok := res.Coverage()
	return &CoverageOut{
		Cov:       cov,
		Ok:        ok,
		Trials:    res.Trials,
		SDCFaults: res.SDCFaults,
		Mitigated: res.Mitigated,
	}, nil
}

// Encode implements Persistable.
func (t *CampaignTask) Encode(v any) ([]byte, error) {
	return encodeArtifact(t.Kind(), v.(*CoverageOut))
}

// Decode implements Persistable.
func (t *CampaignTask) Decode(data []byte) (any, error) {
	var out CoverageOut
	if err := decodeArtifact(t.Kind(), data, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
