package pipeline

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// StoreVersion versions every on-disk artifact. Bump it whenever an
// artifact's meaning changes: a key component is added or removed, a
// payload field changes semantics, or a stage's algorithm changes in a
// way old artifacts would silently misrepresent. Bumping the version
// retires the whole v<N> directory; old artifacts are simply never read
// again.
const StoreVersion = 1

// memLRU is the in-memory artifact tier: completed task outputs keyed by
// content hash, bounded by entry count. Eviction is safe — a recompute of
// any evicted key produces a bit-identical value.
type memLRU struct {
	cap int
	ll  *list.List // front = most recent
	m   map[Key]*list.Element
}

type memNode struct {
	key Key
	val any
}

// defaultMemEntries bounds the in-memory tier of a Pipeline built with
// Options.MemEntries == 0. Campaign outputs are tiny; the large artifacts
// (measurements, search results) number in the dozens per run.
const defaultMemEntries = 8192

func newMemLRU(capacity int) *memLRU {
	if capacity <= 0 {
		capacity = defaultMemEntries
	}
	return &memLRU{cap: capacity, ll: list.New(), m: make(map[Key]*list.Element)}
}

func (t *memLRU) get(k Key) (any, bool) {
	e, ok := t.m[k]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(e)
	return e.Value.(*memNode).val, true
}

func (t *memLRU) add(k Key, v any) {
	if e, ok := t.m[k]; ok {
		t.ll.MoveToFront(e)
		e.Value.(*memNode).val = v
		return
	}
	t.m[k] = t.ll.PushFront(&memNode{key: k, val: v})
	for t.ll.Len() > t.cap {
		back := t.ll.Back()
		t.ll.Remove(back)
		delete(t.m, back.Value.(*memNode).key)
	}
}

func (t *memLRU) len() int { return t.ll.Len() }

// DiskStore is the persistent artifact tier: hash-named JSON files under
// <root>/v<StoreVersion>/<kind>/<hex>.json. Writes are atomic (temp file
// + rename) and best-effort — a disk failure degrades to a cache miss,
// never to a wrong result.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) the versioned artifact
// directory under root. Sectional artifact kinds carry their own schema
// version (SectionSchema); entries written under a different section
// schema are pruned here, on open, so a schema bump invalidates exactly
// the sectional tiers and leaves whole-program artifacts untouched.
func NewDiskStore(root string) (*DiskStore, error) {
	dir := filepath.Join(root, fmt.Sprintf("v%d", StoreVersion))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: disk store: %w", err)
	}
	if err := pruneStaleSectional(dir); err != nil {
		return nil, fmt.Errorf("pipeline: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// sectionalMarker names the file recording which section schema the
// store's sectional entries were written under.
const sectionalMarker = "sectional.schema"

// pruneStaleSectional retires sectional artifact directories written
// under a different (or unknown) section schema and stamps the current
// one. Whole-program kinds are never touched.
func pruneStaleSectional(dir string) error {
	marker := filepath.Join(dir, sectionalMarker)
	cur, err := os.ReadFile(marker)
	if err == nil && string(cur) == SectionSchema {
		return nil
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.IsDir() && sectionalKind(e.Name()) {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return os.WriteFile(marker, []byte(SectionSchema), 0o644)
}

// Dir returns the versioned artifact directory.
func (s *DiskStore) Dir() string { return s.dir }

// Keys enumerates the stored artifact keys of one kind in sorted (hex)
// order. Unparseable file names — temp files from in-flight atomic
// writes, stray editor droppings — are skipped, so a concurrent writer
// can never make enumeration fail. The campaign server uses this to
// recover persisted job envelopes after a restart.
func (s *DiskStore) Keys(kind string) []Key {
	entries, err := os.ReadDir(filepath.Join(s.dir, kind))
	if err != nil {
		return nil
	}
	var keys []Key
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".json"))
		if err != nil || len(raw) != len(Key{}) {
			continue
		}
		var k Key
		copy(k[:], raw)
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Hex() < keys[j].Hex() })
	return keys
}

func (s *DiskStore) path(kind string, k Key) string {
	return filepath.Join(s.dir, kind, k.Hex()+".json")
}

// Get returns the stored artifact bytes for (kind, key), if present.
func (s *DiskStore) Get(kind string, k Key) ([]byte, bool) {
	data, err := os.ReadFile(s.path(kind, k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores artifact bytes for (kind, key) atomically. Errors are
// returned for accounting but leave the store consistent: either the old
// state or the complete new artifact is visible, never a torn write.
func (s *DiskStore) Put(kind string, k Key, data []byte) error {
	dir := filepath.Join(s.dir, kind)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+k.Short()+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(kind, k))
}

// envelope wraps every persisted payload with enough self-description to
// reject artifacts written by a different store version or task kind.
type envelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// EncodeArtifact wraps a payload in the versioned store envelope. It is
// the exported form of the task-persistence codec, for packages (the
// campaign server's job envelopes) that store their own artifact kinds
// in a DiskStore without going through the Task machinery.
func EncodeArtifact(kind string, v any) ([]byte, error) {
	return encodeArtifact(kind, v)
}

// DecodeArtifact unwraps an envelope written by EncodeArtifact,
// verifying store version and kind.
func DecodeArtifact(kind string, data []byte, out any) error {
	return decodeArtifact(kind, data, out)
}

// encodeArtifact wraps v in the versioned envelope.
func encodeArtifact(kind string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{V: StoreVersion, Kind: kind, Data: data})
}

// decodeArtifact unwraps an envelope into out, verifying version and kind.
func decodeArtifact(kind string, data []byte, out any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	if env.V != StoreVersion {
		return fmt.Errorf("pipeline: artifact version %d, want %d", env.V, StoreVersion)
	}
	if env.Kind != kind {
		return fmt.Errorf("pipeline: artifact kind %q, want %q", env.Kind, kind)
	}
	return json.Unmarshal(env.Data, out)
}

// sectionalEnvelope extends the artifact envelope with the section
// schema, so a sectional artifact that somehow survives the open-time
// prune (e.g. copied in by hand) still fails decoding under a different
// schema and degrades to a cache miss.
type sectionalEnvelope struct {
	V      int             `json:"v"`
	Kind   string          `json:"kind"`
	Schema string          `json:"schema"`
	Data   json.RawMessage `json:"data"`
}

// encodeSectional wraps a sectional payload with store version, kind,
// and section schema.
func encodeSectional(kind string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(sectionalEnvelope{V: StoreVersion, Kind: kind, Schema: SectionSchema, Data: data})
}

// decodeSectional unwraps a sectional envelope, verifying version, kind,
// and section schema.
func decodeSectional(kind string, data []byte, out any) error {
	var env sectionalEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	if env.V != StoreVersion {
		return fmt.Errorf("pipeline: artifact version %d, want %d", env.V, StoreVersion)
	}
	if env.Kind != kind {
		return fmt.Errorf("pipeline: artifact kind %q, want %q", env.Kind, kind)
	}
	if env.Schema != SectionSchema {
		return fmt.Errorf("pipeline: sectional artifact schema %q, want %q", env.Schema, SectionSchema)
	}
	return json.Unmarshal(env.Data, out)
}

// StoreStats is the cumulative traffic of both artifact tiers.
type StoreStats struct {
	MemHits    int64 `json:"mem_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Runs       int64 `json:"runs"` // tasks actually executed
	DiskWrites int64 `json:"disk_writes"`
	DiskErrors int64 `json:"disk_errors"` // best-effort writes or decodes that failed
	MemEntries int   `json:"mem_entries"`
}

// String renders the one-line store summary printed by -metrics.
func (s StoreStats) String() string {
	return fmt.Sprintf("artifact store: %d mem hit, %d disk hit, %d run, %d disk write (%d resident, %d disk errors)",
		s.MemHits, s.DiskHits, s.Runs, s.DiskWrites, s.MemEntries, s.DiskErrors)
}
