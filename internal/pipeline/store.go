package pipeline

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// StoreVersion versions every on-disk artifact. Bump it whenever an
// artifact's meaning changes: a key component is added or removed, a
// payload field changes semantics, or a stage's algorithm changes in a
// way old artifacts would silently misrepresent. Bumping the version
// retires the whole v<N> directory; old artifacts are simply never read
// again.
const StoreVersion = 1

// memLRU is the in-memory artifact tier: completed task outputs keyed by
// content hash, bounded by entry count. Eviction is safe — a recompute of
// any evicted key produces a bit-identical value.
type memLRU struct {
	cap int
	ll  *list.List // front = most recent
	m   map[Key]*list.Element
}

type memNode struct {
	key Key
	val any
}

// defaultMemEntries bounds the in-memory tier of a Pipeline built with
// Options.MemEntries == 0. Campaign outputs are tiny; the large artifacts
// (measurements, search results) number in the dozens per run.
const defaultMemEntries = 8192

func newMemLRU(capacity int) *memLRU {
	if capacity <= 0 {
		capacity = defaultMemEntries
	}
	return &memLRU{cap: capacity, ll: list.New(), m: make(map[Key]*list.Element)}
}

func (t *memLRU) get(k Key) (any, bool) {
	e, ok := t.m[k]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(e)
	return e.Value.(*memNode).val, true
}

func (t *memLRU) add(k Key, v any) {
	if e, ok := t.m[k]; ok {
		t.ll.MoveToFront(e)
		e.Value.(*memNode).val = v
		return
	}
	t.m[k] = t.ll.PushFront(&memNode{key: k, val: v})
	for t.ll.Len() > t.cap {
		back := t.ll.Back()
		t.ll.Remove(back)
		delete(t.m, back.Value.(*memNode).key)
	}
}

func (t *memLRU) len() int { return t.ll.Len() }

// DiskStore is the persistent artifact tier: hash-named JSON files under
// <root>/v<StoreVersion>/<kind>/<hex>.json. Writes are atomic (temp file
// + rename) and best-effort — a disk failure degrades to a cache miss,
// never to a wrong result.
type DiskStore struct {
	dir string
}

// NewDiskStore opens (creating if needed) the versioned artifact
// directory under root.
func NewDiskStore(root string) (*DiskStore, error) {
	dir := filepath.Join(root, fmt.Sprintf("v%d", StoreVersion))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: disk store: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the versioned artifact directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(kind string, k Key) string {
	return filepath.Join(s.dir, kind, k.Hex()+".json")
}

// Get returns the stored artifact bytes for (kind, key), if present.
func (s *DiskStore) Get(kind string, k Key) ([]byte, bool) {
	data, err := os.ReadFile(s.path(kind, k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores artifact bytes for (kind, key) atomically. Errors are
// returned for accounting but leave the store consistent: either the old
// state or the complete new artifact is visible, never a torn write.
func (s *DiskStore) Put(kind string, k Key, data []byte) error {
	dir := filepath.Join(s.dir, kind)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+k.Short()+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(kind, k))
}

// envelope wraps every persisted payload with enough self-description to
// reject artifacts written by a different store version or task kind.
type envelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// encodeArtifact wraps v in the versioned envelope.
func encodeArtifact(kind string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{V: StoreVersion, Kind: kind, Data: data})
}

// decodeArtifact unwraps an envelope into out, verifying version and kind.
func decodeArtifact(kind string, data []byte, out any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return err
	}
	if env.V != StoreVersion {
		return fmt.Errorf("pipeline: artifact version %d, want %d", env.V, StoreVersion)
	}
	if env.Kind != kind {
		return fmt.Errorf("pipeline: artifact kind %q, want %q", env.Kind, kind)
	}
	return json.Unmarshal(env.Data, out)
}

// StoreStats is the cumulative traffic of both artifact tiers.
type StoreStats struct {
	MemHits    int64 `json:"mem_hits"`
	DiskHits   int64 `json:"disk_hits"`
	Runs       int64 `json:"runs"` // tasks actually executed
	DiskWrites int64 `json:"disk_writes"`
	DiskErrors int64 `json:"disk_errors"` // best-effort writes or decodes that failed
	MemEntries int   `json:"mem_entries"`
}

// String renders the one-line store summary printed by -metrics.
func (s StoreStats) String() string {
	return fmt.Sprintf("artifact store: %d mem hit, %d disk hit, %d run, %d disk write (%d resident, %d disk errors)",
		s.MemHits, s.DiskHits, s.Runs, s.DiskWrites, s.MemEntries, s.DiskErrors)
}
