package pipeline

import (
	"fmt"
	"io"

	"repro/internal/fault"
)

// RenderMetrics prints the unified -metrics text block shared by every
// CLI: the per-phase campaign table, then (when present) the campaign
// cache and artifact-store summary lines. Nil metrics render as an empty
// table; nil cache and pipe suppress their lines.
func RenderMetrics(w io.Writer, m *fault.Metrics, cache *fault.Cache, pipe *Pipeline) error {
	if err := m.Render(w); err != nil {
		return err
	}
	if cache != nil {
		fmt.Fprintln(w, cache.Stats())
	}
	if pipe != nil {
		fmt.Fprintln(w, pipe.Stats())
	}
	return nil
}
