package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/inputgen"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

// SectionSchema versions every sectional artifact key and payload
// envelope. Bump it whenever the section partition, the boundary
// summary, the per-section RNG sub-stream derivation, or a sectional
// payload changes meaning: stale sectional entries are then pruned from
// the disk store on open (see DiskStore), while whole-program artifacts
// — which carry no section schema — survive untouched.
const SectionSchema = "section-schema/v1"

// sectionalKind reports whether an artifact kind stores per-section
// (incremental) artifacts. Sectional kinds share the "sec" prefix by
// convention; they are the only entries a SectionSchema bump retires.
func sectionalKind(kind string) bool {
	return len(kind) >= 3 && kind[:3] == "sec"
}

// SectionCtx pins one section's identity for artifact keying: the
// section itself plus the three canonical hashes that make reuse valid —
// content (what the section computes), boundary (the dataflow facts at
// its seams, including callee interface summaries), and golden (its
// dynamic weight plus the whole-program golden context). None of the
// three mentions module-wide instruction IDs, so an edit elsewhere in
// the module leaves all three unchanged and the stored artifact hits.
type SectionCtx struct {
	Sec      *ir.Section
	Content  [sha256.Size]byte
	Boundary [sha256.Size]byte
	Golden   [sha256.Size]byte
}

// SectionContexts computes the keying contexts of every section of mod
// under one golden execution.
func SectionContexts(mod *ir.Module, golden *fault.Golden) []SectionCtx {
	b := analysis.BuildBoundaries(mod)
	out := make([]SectionCtx, len(b.Set.Sections))
	for si, sec := range b.Set.Sections {
		out[si] = SectionCtx{
			Sec:      sec,
			Content:  sec.Hash,
			Boundary: b.HashOf(si),
			Golden:   fault.SectionGoldenHash(sec, golden),
		}
	}
	return out
}

// sectionKeyOf appends a section identity to a key under construction:
// the section schema, the stable section name, and the three canonical
// hashes. Deliberately NO ModuleHash — that is the whole point of
// sectional keying.
func sectionKeyOf(h *Hasher, c *SectionCtx) *Hasher {
	return h.Str(SectionSchema).
		Str(c.Sec.Name()).
		Str(hex.EncodeToString(c.Content[:])).
		Str(hex.EncodeToString(c.Boundary[:])).
		Str(hex.EncodeToString(c.Golden[:]))
}

// ---------------------------------------------------------------------
// SectionMeasureTask

// SectionMeasureTask runs the per-instruction FI measurement of ONE
// section, drawing from the section's deterministic RNG sub-stream. Its
// key is content-addressed on the section (not the module), so after an
// edit every untouched section's measurement is served from the store
// with zero re-injected faults.
type SectionMeasureTask struct {
	Target         minpsid.Target
	Input          inputgen.Input
	Ctx            SectionCtx
	FaultsPerInstr int
	Seed           int64 // the section's sub-stream seed
	Model          string
	Env            Env
}

// Kind implements Task.
func (t *SectionMeasureTask) Kind() string { return "secmeasure" }

// Key implements Task.
func (t *SectionMeasureTask) Key() Key {
	h := NewHasher("secmeasure")
	sectionKeyOf(h, &t.Ctx).
		Key(BindingHash(t.Target.Bind(t.Input))).
		Key(ExecHash(t.Target.Exec)).
		I64(int64(t.FaultsPerInstr)).
		I64(t.Seed).
		Str(analysis.Version)
	if m := NormModel(t.Model); m != fault.DefaultModel().Name() {
		h.Str("model").Str(m)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *SectionMeasureTask) Deps() []Task { return nil }

// Run implements Task.
func (t *SectionMeasureTask) Run(rt *Runtime) (any, error) {
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	bind := t.Target.Bind(t.Input)
	golden, err := t.Env.Cache.Golden(t.Target.Mod, bind, t.Target.Exec,
		t.Env.Metrics.Phase(fault.PhaseRefFI))
	if err != nil {
		return nil, err
	}
	c := &fault.Campaign{Mod: t.Target.Mod, Bind: bind, Cfg: t.Target.Exec, Golden: golden,
		Workers: t.Env.Workers, Model: model,
		Metrics: t.Env.Metrics.Phase(fault.PhaseRefFI), Obs: rt.Obs()}
	out := c.PerInstructionSection(t.Ctx.Sec, t.FaultsPerInstr, t.Seed)
	return &out, nil
}

// Encode implements Persistable. Sectional payloads are stored in
// section-local coordinates, so the artifact is valid under any module
// renumbering that preserves the section.
func (t *SectionMeasureTask) Encode(v any) ([]byte, error) {
	return encodeSectional(t.Kind(), v.(*fault.SectionInstrStats))
}

// Decode implements Persistable.
func (t *SectionMeasureTask) Decode(data []byte) (any, error) {
	var out fault.SectionInstrStats
	if err := decodeSectional(t.Kind(), data, &out); err != nil {
		return nil, err
	}
	if len(out.Stats) != len(t.Ctx.Sec.Instrs) {
		return nil, fmt.Errorf("pipeline: section %q artifact has %d stats for %d instrs",
			out.Name, len(out.Stats), len(t.Ctx.Sec.Instrs))
	}
	return &out, nil
}

// ---------------------------------------------------------------------
// SectionCampaignTask

// SectionCampaignTask runs ONE section's slice of a program-level
// characterization campaign on the original (unprotected) program: its
// apportioned trials, drawn from its sub-stream, classified and stored
// in section-local coordinates.
type SectionCampaignTask struct {
	Mod   *ir.Module // the ORIGINAL program
	Bind  interp.Binding
	Exec  interp.Config
	Ctx   SectionCtx
	N     int   // trials apportioned to this section
	Seed  int64 // the section's sub-stream seed
	Model string
	Env   Env
}

// Kind implements Task.
func (t *SectionCampaignTask) Kind() string { return "seccampaign" }

// Key implements Task.
func (t *SectionCampaignTask) Key() Key {
	h := NewHasher("seccampaign")
	sectionKeyOf(h, &t.Ctx).
		Key(BindingHash(t.Bind)).
		Key(ExecHash(t.Exec)).
		I64(int64(t.N)).
		I64(t.Seed).
		Str(analysis.Version)
	if m := NormModel(t.Model); m != fault.DefaultModel().Name() {
		h.Str("model").Str(m)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *SectionCampaignTask) Deps() []Task { return nil }

// Run implements Task.
func (t *SectionCampaignTask) Run(rt *Runtime) (any, error) {
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	golden, err := t.Env.Cache.Golden(t.Mod, t.Bind, t.Exec,
		t.Env.Metrics.Phase(fault.PhaseEvaluation))
	if err != nil {
		return nil, err
	}
	c := &fault.Campaign{Mod: t.Mod, Bind: t.Bind, Cfg: t.Exec, Golden: golden,
		Workers: t.Env.Workers, Model: model,
		Metrics: t.Env.Metrics.Phase(fault.PhaseEvaluation), Obs: rt.Obs()}
	out := c.RunSection(t.Ctx.Sec, t.N, t.Seed, true)
	return &out, nil
}

// Encode implements Persistable.
func (t *SectionCampaignTask) Encode(v any) ([]byte, error) {
	return encodeSectional(t.Kind(), v.(*fault.SectionProfile))
}

// Decode implements Persistable.
func (t *SectionCampaignTask) Decode(data []byte) (any, error) {
	var out fault.SectionProfile
	if err := decodeSectional(t.Kind(), data, &out); err != nil {
		return nil, err
	}
	for _, s := range out.Sites {
		if s.Ordinal < 0 || s.Ordinal >= len(t.Ctx.Sec.Instrs) {
			return nil, fmt.Errorf("pipeline: section %q artifact site ordinal %d out of range",
				out.Name, s.Ordinal)
		}
	}
	return &out, nil
}

// ---------------------------------------------------------------------
// SectionCharTask

// SectionCharTask runs ONE section's slice of a raw characterization
// campaign (the sdcfi path: all injectable instructions, duplicates
// included — the excludeDup=false stream RunSectional draws). It is the
// shard unit of the campaign server: each shard is content-addressed on
// the section, so a preempted or killed job resumes by loading every
// committed shard from the store and re-injects zero faults into them,
// and two jobs over the same program content share shards byte-for-byte.
type SectionCharTask struct {
	Mod   *ir.Module
	Bind  interp.Binding
	Exec  interp.Config
	Ctx   SectionCtx
	N     int   // trials apportioned to this section
	Seed  int64 // the section's sub-stream seed
	Model string
	Env   Env
}

// Kind implements Task. The "sec" prefix opts the artifacts into the
// section-schema prune on store open.
func (t *SectionCharTask) Kind() string { return "secchar" }

// Key implements Task. Identity is derived from content hashes only —
// never from submission time, tenant, or placement (enforced by the
// sdclint job-identity rule).
func (t *SectionCharTask) Key() Key {
	h := NewHasher("secchar")
	sectionKeyOf(h, &t.Ctx).
		Key(BindingHash(t.Bind)).
		Key(ExecHash(t.Exec)).
		I64(int64(t.N)).
		I64(t.Seed).
		Str(analysis.Version)
	if m := NormModel(t.Model); m != fault.DefaultModel().Name() {
		h.Str("model").Str(m)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *SectionCharTask) Deps() []Task { return nil }

// Run implements Task.
func (t *SectionCharTask) Run(rt *Runtime) (any, error) {
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	golden, err := t.Env.Cache.Golden(t.Mod, t.Bind, t.Exec,
		t.Env.Metrics.Phase(fault.PhaseProgramFI))
	if err != nil {
		return nil, err
	}
	c := &fault.Campaign{Mod: t.Mod, Bind: t.Bind, Cfg: t.Exec, Golden: golden,
		Workers: t.Env.Workers, Model: model,
		Metrics: t.Env.Metrics.Phase(fault.PhaseProgramFI), Obs: rt.Obs()}
	out := c.RunSection(t.Ctx.Sec, t.N, t.Seed, false)
	return &out, nil
}

// Encode implements Persistable.
func (t *SectionCharTask) Encode(v any) ([]byte, error) {
	return encodeSectional(t.Kind(), v.(*fault.SectionProfile))
}

// Decode implements Persistable.
func (t *SectionCharTask) Decode(data []byte) (any, error) {
	var out fault.SectionProfile
	if err := decodeSectional(t.Kind(), data, &out); err != nil {
		return nil, err
	}
	for _, s := range out.Sites {
		if s.Ordinal < 0 || s.Ordinal >= len(t.Ctx.Sec.Instrs) {
			return nil, fmt.Errorf("pipeline: section %q artifact site ordinal %d out of range",
				out.Name, s.Ordinal)
		}
	}
	return &out, nil
}

// ---------------------------------------------------------------------
// Incremental drivers (called from MeasureTask/CampaignTask.Run)

// runIncremental fans the per-instruction measurement out into one
// SectionMeasureTask per section, awaits the artifacts (warm sections
// load from the store with zero injected faults), and composes the
// module-indexed measurement through sid.MeasurementFromStats — the same
// code path the whole-program measurement uses.
func (t *MeasureTask) runIncremental(rt *Runtime) (any, error) {
	t0 := time.Now()
	bind := t.Target.Bind(t.Input)
	golden, err := t.Env.Cache.Golden(t.Target.Mod, bind, t.Target.Exec,
		t.Env.Metrics.Phase(fault.PhaseRefFI))
	if err != nil {
		return nil, err
	}
	ctxs := SectionContexts(t.Target.Mod, golden)
	tasks := make([]Task, len(ctxs))
	for i := range ctxs {
		sec := ctxs[i].Sec
		tasks[i] = &SectionMeasureTask{
			Target: t.Target, Input: t.Input, Ctx: ctxs[i],
			FaultsPerInstr: t.FaultsPerInstr,
			Seed:           fault.SectionSeed(t.Seed, sec.FuncName, sec.SecIdx),
			Model:          t.Model, Env: t.Env,
		}
	}
	outs, err := rt.Await(tasks...)
	if err != nil {
		return nil, err
	}
	perSec := make([]fault.SectionInstrStats, len(outs))
	for i := range outs {
		perSec[i] = *outs[i].(*fault.SectionInstrStats)
	}
	stats, err := fault.ComposeInstrStats(t.Target.Mod, perSec)
	if err != nil {
		return nil, err
	}
	meas := sid.MeasurementFromStats(t.Target.Mod, golden, stats)
	return &MeasureOut{Meas: meas, Wall: time.Since(t0)}, nil
}

// runIncremental plans the phase-1 characterization campaign per
// section, awaits the per-section slices, flattens them back to module
// coordinates, and finishes through fault.ReplayCoverage — phase 2 is
// shared verbatim with the whole-program path.
func (t *CampaignTask) runIncremental(rt *Runtime) (any, error) {
	model, err := modelFor(t.Model)
	if err != nil {
		return nil, err
	}
	pm := t.Env.Metrics.Phase(fault.PhaseEvaluation)
	goldenO, err := t.Env.Cache.Golden(t.Prot.Orig, t.Bind, t.Exec, pm)
	if err != nil {
		// Inadmissible input: deterministically undefined, not a failure
		// (mirrors the whole-program path).
		return &CoverageOut{}, nil
	}
	camp := &fault.Campaign{Mod: t.Prot.Orig, Bind: t.Bind, Cfg: t.Exec, Golden: goldenO,
		Workers: t.Env.Workers, Model: model, Metrics: pm}
	plans := camp.PlanSectional(t.Trials, t.Seed, true)
	ctxs := SectionContexts(t.Prot.Orig, goldenO)
	ctxOf := make(map[string]SectionCtx, len(ctxs))
	for _, c := range ctxs {
		ctxOf[c.Sec.Name()] = c
	}
	tasks := make([]Task, len(plans))
	for i, p := range plans {
		tasks[i] = &SectionCampaignTask{
			Mod: t.Prot.Orig, Bind: t.Bind, Exec: t.Exec,
			Ctx: ctxOf[p.Sec.Name()], N: p.N, Seed: p.Seed,
			Model: t.Model, Env: t.Env,
		}
	}
	outs, err := rt.Await(tasks...)
	if err != nil {
		return nil, err
	}
	var sites []interp.Fault
	var outcomes []fault.Outcome
	var shortfall, planned int64
	for i, o := range outs {
		prof := o.(*fault.SectionProfile)
		sites = append(sites, prof.Faults(plans[i].Sec)...)
		for _, s := range prof.Sites {
			outcomes = append(outcomes, s.Outcome)
		}
		shortfall += prof.Shortfall
		planned += int64(plans[i].N)
	}
	if missing := int64(t.Trials) - planned; missing > 0 {
		shortfall += missing // no injectable weight anywhere to place them
	}
	res, err := fault.ReplayCoverage(t.Prot.Mod, t.Prot.IDs, t.Bind, t.Exec,
		fault.CoverageOptions{
			Trials: t.Trials, Seed: t.Seed, Model: model, Workers: t.Env.Workers,
			Cache: t.Env.Cache, Metrics: pm, Obs: rt.Obs(),
		}, sites, outcomes, int64(t.Trials), shortfall)
	if err != nil {
		return &CoverageOut{}, nil
	}
	cov, ok := res.Coverage()
	return &CoverageOut{
		Cov:       cov,
		Ok:        ok,
		Trials:    res.Trials,
		SDCFaults: res.SDCFaults,
		Mitigated: res.Mitigated,
	}, nil
}
