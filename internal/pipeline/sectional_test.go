package pipeline

// Tests for the sectional (incremental) artifact tier: the schema-scoped
// disk pruning, the sectional envelope, and the end-to-end cache-smoke
// property the tentpole promises — a single-function edit re-runs only
// the sections it touched, with zero faults re-injected anywhere else.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/minicc"
	"repro/internal/minpsid"
	"repro/internal/passes"
)

// freshModule compiles a private copy of a benchmark's module.
// Benchmark.MustModule caches and shares one module per process; the
// mutation tests below need an independently editable build.
func freshModule(t testing.TB, bench *benchprog.Benchmark) *ir.Module {
	t.Helper()
	m, err := minicc.Compile(bench.Name+".mc", bench.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Optimize(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSectionalKindPrefix(t *testing.T) {
	for kind, want := range map[string]bool{
		"secmeasure": true, "seccampaign": true, "sec": true,
		"measure": false, "campaign": false, "search": false, "se": false, "": false,
	} {
		if got := sectionalKind(kind); got != want {
			t.Errorf("sectionalKind(%q) = %v, want %v", kind, got, want)
		}
	}
}

func TestSectionalEnvelopeSchema(t *testing.T) {
	prof := &fault.SectionProfile{Name: "f#body", Requested: 3,
		Sites: []fault.LocalSite{{Ordinal: 1, DynIndex: 2, Bit: 3, Outcome: fault.OutcomeSDC}}}
	data, err := encodeSectional("seccampaign", prof)
	if err != nil {
		t.Fatal(err)
	}
	var back fault.SectionProfile
	if err := decodeSectional("seccampaign", data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, prof) {
		t.Fatalf("round trip: got %+v, want %+v", back, *prof)
	}
	// A payload written under a different section schema must be rejected
	// even if version and kind agree.
	stale := []byte(`{"v":1,"kind":"seccampaign","schema":"section-schema/v0","data":{}}`)
	if err := decodeSectional("seccampaign", stale, &back); err == nil {
		t.Fatal("stale section schema decoded without error")
	}
	// Plain artifacts lack the schema field entirely and must be rejected.
	plain, err := encodeArtifact("seccampaign", prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeSectional("seccampaign", plain, &back); err == nil {
		t.Fatal("schema-less envelope decoded as sectional")
	}
}

// TestSectionalStorePrune pins the eviction contract: a SectionSchema
// bump (simulated by tampering the marker) retires exactly the sectional
// kind directories on open, leaving whole-program artifacts intact.
func TestSectionalStorePrune(t *testing.T) {
	root := t.TempDir()
	s, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	k := NewHasher("x").Str("k").Sum()
	for _, kind := range []string{"secmeasure", "seccampaign", "campaign", "measure"} {
		if err := s.Put(kind, k, []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
	}

	// Same schema: reopen keeps everything.
	if _, err := NewDiskStore(root); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"secmeasure", "seccampaign", "campaign", "measure"} {
		if _, ok := s.Get(kind, k); !ok {
			t.Fatalf("%s entry lost on same-schema reopen", kind)
		}
	}

	// Stale schema: reopen prunes sectional kinds only and restamps.
	marker := filepath.Join(s.Dir(), sectionalMarker)
	if err := os.WriteFile(marker, []byte("section-schema/v0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(root); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"secmeasure", "seccampaign"} {
		if _, ok := s.Get(kind, k); ok {
			t.Errorf("stale %s entry survived the schema bump", kind)
		}
	}
	for _, kind := range []string{"campaign", "measure"} {
		if _, ok := s.Get(kind, k); !ok {
			t.Errorf("whole-program %s entry was pruned by a section schema bump", kind)
		}
	}
	if cur, err := os.ReadFile(marker); err != nil || string(cur) != SectionSchema {
		t.Errorf("marker not restamped: %q, %v", cur, err)
	}

	// A missing marker (store predating the sectional tier, or deleted by
	// hand) is treated as unknown schema: sectional entries cannot be
	// trusted and are pruned.
	if err := s.Put("secmeasure", k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(marker); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDiskStore(root); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("secmeasure", k); ok {
		t.Error("sectional entry survived a missing marker")
	}
}

// swapPure finds two adjacent, independent, pure value-producing
// instructions in one block — a semantics-preserving single-function
// edit (mirrors the mutation used by the fault-layer isolation test).
func swapPure(m *ir.Module) (f *ir.Function, blk *ir.Block, idx int) {
	pure := func(in *ir.Instr) bool {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpShr, ir.OpICmp:
			return in.HasResult()
		}
		return false
	}
	uses := func(in *ir.Instr, reg int) bool {
		for _, a := range in.Args {
			if a.Kind == ir.OperReg && a.Reg == reg {
				return true
			}
		}
		return false
	}
	for _, fn := range m.Funcs {
		for _, b := range fn.Blocks {
			for i := 0; i+1 < len(b.Instrs); i++ {
				x, y := b.Instrs[i], b.Instrs[i+1]
				if pure(x) && pure(y) && x.Dst != y.Dst &&
					!uses(y, x.Dst) && !uses(x, y.Dst) {
					return fn, b, i
				}
			}
		}
	}
	return nil, nil, -1
}

// identityProtect wraps a module as its own "protection" (empty
// selection, identity ID map) so a CampaignTask can run without the
// protect machinery.
func identityProtect(m *ir.Module) *ProtectOut {
	ids := make(map[int]int, m.NumInstrs())
	for i := 0; i < m.NumInstrs(); i++ {
		ids[i] = i
	}
	return &ProtectOut{Orig: m, Mod: m, IDs: ids}
}

// sourcesByKind tallies node sources for one task kind.
func sourcesByKind(p *Pipeline, kind string) map[string]int {
	out := map[string]int{}
	for _, n := range p.Nodes() {
		if n.Kind == kind {
			out[n.Source]++
		}
	}
	return out
}

// TestIncrementalCacheSmoke is the tentpole's end-to-end acceptance on a
// real benchmark: a cold incremental run populates per-section
// artifacts; a warm rerun re-injects nothing; after a single-function
// semantics-preserving edit, only the edited section's artifacts miss,
// the re-run trial share stays under 20%, and no faults are re-injected
// into untouched sections.
func TestIncrementalCacheSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("incremental cache smoke is slow")
	}
	const faultsPerInstr, trials = 2, 150

	for _, bench := range benchprog.All() {
		m := freshModule(t, bench)
		fn, blk, idx := swapPure(m)
		if fn == nil {
			continue
		}
		set := ir.PartitionSections(m)
		if len(set.Sections) < 3 {
			continue
		}

		// The edit must stay under 20% of campaign trials for the
		// acceptance bound; pick the first benchmark where it does.
		bind := bench.Bind(bench.Reference)
		cfg := bench.ExecConfig()
		g, err := fault.RunGolden(m, bind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		camp := &fault.Campaign{Mod: m, Bind: bind, Cfg: cfg, Golden: g}
		plans := camp.PlanSectional(trials, 5, true)
		edited := set.Sections[set.SectionOf(blk.Instrs[idx].ID)]
		editedShare := 0
		for _, p := range plans {
			if p.Sec == edited {
				editedShare = p.N
			}
		}
		if float64(editedShare) >= 0.20*trials {
			continue
		}

		t.Logf("benchmark %s: %d sections, edited function holds %d/%d trials",
			bench.Name, len(set.Sections), editedShare, trials)
		runIncrementalSmoke(t, bench, m, fn, blk, idx, faultsPerInstr, trials)
		return
	}
	t.Fatal("no benchmark offered a multi-section edit site under 20 percent trial share")
}

func runIncrementalSmoke(t *testing.T, bench *benchprog.Benchmark, m *ir.Module,
	fn *ir.Function, blk *ir.Block, idx, faultsPerInstr, trials int) {

	dir := t.TempDir()
	target := func(mod *ir.Module) minpsid.Target {
		return minpsid.Target{Mod: mod, Spec: bench.Spec, Bind: bench.Bind, Exec: bench.ExecConfig()}
	}
	tasksFor := func(mod *ir.Module, env Env) (*MeasureTask, *CampaignTask) {
		mt := &MeasureTask{Target: target(mod), Input: bench.Reference,
			FaultsPerInstr: faultsPerInstr, Seed: 7, Incremental: true, Env: env}
		ct := &CampaignTask{Prot: identityProtect(mod), Bind: bench.Bind(bench.Reference),
			Exec: bench.ExecConfig(), Trials: trials, Seed: 5, Incremental: true, Env: env}
		return mt, ct
	}
	run := func(p *Pipeline, mod *ir.Module) (*MeasureOut, *CoverageOut) {
		env := newEnv()
		mt, ct := tasksFor(mod, env)
		mv, err := p.Run(mt)
		if err != nil {
			t.Fatalf("incremental measure: %v", err)
		}
		cv, err := p.Run(ct)
		if err != nil {
			t.Fatalf("incremental campaign: %v", err)
		}
		return mv.(*MeasureOut), cv.(*CoverageOut)
	}
	newDisk := func() *Pipeline {
		p, err := New(Options{Workers: 4, DiskDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Cold: everything sectional runs.
	p1 := newDisk()
	meas1, cov1 := run(p1, m)
	cold := sourcesByKind(p1, "secmeasure")
	if cold[SourceRun] == 0 {
		t.Fatalf("cold run executed no secmeasure tasks: %v", cold)
	}

	// Warm, identical module: nothing fault-injecting re-runs.
	p2 := newDisk()
	meas2, cov2 := run(p2, m)
	for _, kind := range []string{"measure", "campaign", "secmeasure", "seccampaign"} {
		if n := sourcesByKind(p2, kind)[SourceRun]; n != 0 {
			t.Errorf("warm rerun executed %d %s tasks, want 0", n, kind)
		}
	}
	if !reflect.DeepEqual(meas1.Meas.SDCProb, meas2.Meas.SDCProb) || !reflect.DeepEqual(cov1, cov2) {
		t.Fatal("warm rerun changed composed results")
	}

	// Edit: swap the two independent instructions in fn, rebuild.
	m2 := freshModule(t, bench)
	b2 := m2.Funcs[fn.Index].Blocks[blk.Index]
	b2.Instrs[idx], b2.Instrs[idx+1] = b2.Instrs[idx+1], b2.Instrs[idx]
	m2.Finalize()
	if err := ir.Verify(m2); err != nil {
		t.Fatalf("edited module does not verify: %v", err)
	}
	changed := map[string]bool{}
	base := map[string][32]byte{}
	for _, s := range ir.PartitionSections(m).Sections {
		base[s.Name()] = s.Hash
	}
	for _, s := range ir.PartitionSections(m2).Sections {
		if base[s.Name()] != s.Hash {
			changed[s.Name()] = true
		}
	}
	if len(changed) != 1 {
		t.Fatalf("edit changed %d section hashes, want 1", len(changed))
	}

	// Post-edit run: the composite tasks miss (module hash changed) and
	// fan out; only the edited section's artifacts may execute.
	p3 := newDisk()
	run(p3, m2)
	for _, kind := range []string{"secmeasure", "seccampaign"} {
		src := sourcesByKind(p3, kind)
		if src[SourceRun] > 1 {
			t.Errorf("post-edit run executed %d %s tasks, want <=1 (the edited section)", src[SourceRun], kind)
		}
		if src[SourceDisk] == 0 {
			t.Errorf("post-edit run loaded no %s artifacts from disk: %v", kind, src)
		}
	}

	// Zero re-injection outside the edit: re-running the post-edit
	// workload once more must execute nothing sectional at all.
	p4 := newDisk()
	run(p4, m2)
	for _, kind := range []string{"secmeasure", "seccampaign"} {
		if n := sourcesByKind(p4, kind)[SourceRun]; n != 0 {
			t.Errorf("second post-edit run executed %d %s tasks, want 0", n, kind)
		}
	}
}

// TestSectionMeasureArtifactRoundTrip pins the persistable contract of
// the per-section measurement through a real store: encode, decode, and
// the arity guard against a partition drift.
func TestSectionMeasureArtifactRoundTrip(t *testing.T) {
	bench, ok := benchprog.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder missing")
	}
	m := bench.MustModule()
	bind := bench.Bind(bench.Reference)
	g, err := fault.RunGolden(m, bind, bench.ExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctxs := SectionContexts(m, g)
	task := &SectionMeasureTask{
		Target: minpsid.Target{Mod: m, Spec: bench.Spec, Bind: bench.Bind, Exec: bench.ExecConfig()},
		Input:  bench.Reference, Ctx: ctxs[0], FaultsPerInstr: 1, Seed: 3,
		Env: newEnv(),
	}
	out := fault.SectionInstrStats{Name: ctxs[0].Sec.Name(),
		Stats: make([]fault.InstrStats, len(ctxs[0].Sec.Instrs))}
	data, err := task.Encode(&out)
	if err != nil {
		t.Fatal(err)
	}
	back, err := task.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, &out) {
		t.Fatal("section measurement artifact did not round-trip")
	}
	// Wrong arity (stale artifact for a re-partitioned section) must fail
	// decoding rather than compose garbage.
	bad := fault.SectionInstrStats{Name: out.Name, Stats: make([]fault.InstrStats, len(out.Stats)+1)}
	data, err = task.Encode(&bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := task.Decode(data); err == nil {
		t.Fatal("arity-mismatched artifact decoded without error")
	}
}

// TestSectionKeyIgnoresModuleIdentity pins the load-bearing property of
// sectional keys: two different modules sharing a section with equal
// content, boundary, and golden hashes produce the same artifact key —
// and perturbing any one of the three hashes changes it.
func TestSectionKeyIgnoresModuleIdentity(t *testing.T) {
	bench, ok := benchprog.ByName("pathfinder")
	if !ok {
		t.Fatal("pathfinder missing")
	}
	m1, m2 := bench.MustModule(), bench.MustModule()
	bind := bench.Bind(bench.Reference)
	g1, err := fault.RunGolden(m1, bind, bench.ExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := fault.RunGolden(m2, bind, bench.ExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := SectionContexts(m1, g1), SectionContexts(m2, g2)
	if len(c1) != len(c2) {
		t.Fatalf("partition sizes differ: %d vs %d", len(c1), len(c2))
	}
	mk := func(c SectionCtx) Key {
		return sectionKeyOf(NewHasher("probe"), &c).Sum()
	}
	for i := range c1 {
		if mk(c1[i]) != mk(c2[i]) {
			t.Fatalf("section %s keyed differently across identical builds", c1[i].Sec.Name())
		}
		for name, mut := range map[string]func(*SectionCtx){
			"content":  func(c *SectionCtx) { c.Content[0] ^= 1 },
			"boundary": func(c *SectionCtx) { c.Boundary[0] ^= 1 },
			"golden":   func(c *SectionCtx) { c.Golden[0] ^= 1 },
		} {
			c := c1[i]
			mut(&c)
			if mk(c) == mk(c1[i]) {
				t.Fatalf("section %s key ignores the %s hash", c1[i].Sec.Name(), name)
			}
		}
	}
}
