package pipeline

import (
	"repro/internal/inputgen"
	"repro/internal/minpsid"
	"repro/internal/sid"
)

// TechOut is one (technique, level) cell of the evaluation: the expected
// coverage claimed by the selection and the measured coverage
// distribution over the evaluation inputs.
type TechOut struct {
	Expected  float64
	Coverage  []float64
	LossCount int
	Inputs    int
	Sel       sid.Selection
	Prot      *ProtectOut
}

// LevelOut pairs both techniques at one protection level.
type LevelOut struct {
	Level float64
	Base  TechOut
	Minp  TechOut
}

// EvalOut is the full evaluation of one benchmark.
type EvalOut struct {
	Meas   *MeasureOut
	Search *minpsid.SearchResult
	Inputs []inputgen.Input
	Levels []LevelOut
}

// EvalTask is the composite root node evaluating one benchmark: reference
// measurement, MINPSID input search, per-level protection by both
// techniques, and true-coverage campaigns over freshly drawn evaluation
// inputs. It fans out dynamically (campaign tasks depend on the drawn
// inputs), shares subtask nodes with every other experiment in the same
// pipeline, and — because campaign keys are content-addressed on the
// selection, not the technique — runs each distinct campaign exactly
// once even when baseline and MINPSID select identical instructions.
type EvalTask struct {
	Target         minpsid.Target
	Ref            inputgen.Input
	Levels         []float64
	EvalInputs     int
	Trials         int // program-level faults per input
	FaultsPerInstr int
	Seed           int64
	SearchCfg      minpsid.Config // carries the search seed
	// FaultModel and Detector select the injected fault model and the
	// detector portfolio for every protection and campaign of the
	// evaluation ("" = the paper's bitflip + duplication defaults).
	FaultModel string
	Detector   string
	// Incremental switches the measurement and campaigns of this
	// evaluation to the sectional path: artifacts are keyed per section,
	// so an edit to the benchmark re-runs only the sections it touched.
	// Off by default; defaults reproduce the paper byte-identically.
	Incremental bool
	Env         Env
}

// Measure returns the reference-measurement subtask (shared with
// figure-specific drivers that need the raw measurement node).
func (t *EvalTask) Measure() *MeasureTask {
	return &MeasureTask{Target: t.Target, Input: t.Ref, FaultsPerInstr: t.FaultsPerInstr,
		Seed: t.Seed, Model: t.FaultModel, Incremental: t.Incremental, Env: t.Env}
}

// SearchNode returns the input-search subtask.
func (t *EvalTask) SearchNode() *SearchTask {
	return &SearchTask{Target: t.Target, Ref: t.Ref, Cfg: t.SearchCfg, Measure: t.Measure(), Env: t.Env}
}

// InputsNode returns the evaluation-input subtask.
func (t *EvalTask) InputsNode() *InputsTask {
	return &InputsTask{Target: t.Target, N: t.EvalInputs, Seed: t.Seed + 1000, Env: t.Env}
}

// Kind implements Task.
func (t *EvalTask) Kind() string { return "eval" }

// Key implements Task.
func (t *EvalTask) Key() Key {
	h := NewHasher("eval").
		Key(t.Measure().Key()).
		Key(t.SearchNode().Key()).
		Key(t.InputsNode().Key()).
		F64s(t.Levels).
		I64(int64(t.EvalInputs)).
		I64(int64(t.Trials)).
		I64(t.Seed)
	// Incremental campaigns key differently (the measurement already
	// does, through Measure().Key()).
	if t.Incremental {
		h.Str("incremental").Str(SectionSchema)
	}
	// The model reaches the key through Measure().Key(); the detector
	// portfolio extends it only when non-default.
	if d := NormDetector(t.Detector); d != sid.DefaultDetector().Name() {
		h.Str("detector").Str(d)
	}
	return h.Sum()
}

// Deps implements Task.
func (t *EvalTask) Deps() []Task { return nil }

// Run implements Task.
func (t *EvalTask) Run(rt *Runtime) (any, error) {
	mt := t.Measure()
	st := t.SearchNode()
	it := t.InputsNode()

	// Protections for both techniques at every level; awaiting them pulls
	// the measurement and search in as dependencies.
	roots := []Task{mt, st, it}
	for _, level := range t.Levels {
		roots = append(roots,
			&ProtectTask{Target: t.Target, Level: level, Measure: mt,
				Detector: t.Detector, Model: t.FaultModel, Env: t.Env},
			&ProtectTask{Target: t.Target, Level: level, Measure: mt, Search: st,
				Detector: t.Detector, Model: t.FaultModel, Env: t.Env},
		)
	}
	outs, err := rt.Await(roots...)
	if err != nil {
		return nil, err
	}
	out := &EvalOut{
		Meas:   outs[0].(*MeasureOut),
		Search: outs[1].(*minpsid.SearchResult),
		Inputs: outs[2].([]inputgen.Input),
	}

	// Campaigns: one per (level, technique, input); identical selections
	// collapse onto one node by key.
	var camps []Task
	for li, level := range t.Levels {
		base := outs[3+2*li].(*ProtectOut)
		minp := outs[4+2*li].(*ProtectOut)
		out.Levels = append(out.Levels, LevelOut{
			Level: level,
			Base:  TechOut{Expected: base.Sel.ExpectedCoverage, Sel: base.Sel, Prot: base},
			Minp:  TechOut{Expected: minp.Sel.ExpectedCoverage, Sel: minp.Sel, Prot: minp},
		})
		for i, in := range out.Inputs {
			seed := t.Seed + int64(i)*31 + int64(level*100)
			bind := t.Target.Bind(in)
			camps = append(camps,
				&CampaignTask{Prot: base, Bind: bind, Exec: t.Target.Exec, Trials: t.Trials,
					Seed: seed, Model: t.FaultModel, Incremental: t.Incremental, Env: t.Env},
				&CampaignTask{Prot: minp, Bind: bind, Exec: t.Target.Exec, Trials: t.Trials,
					Seed: seed, Model: t.FaultModel, Incremental: t.Incremental, Env: t.Env},
			)
		}
	}
	covs, err := rt.Await(camps...)
	if err != nil {
		return nil, err
	}

	ci := 0
	for li := range out.Levels {
		lo := &out.Levels[li]
		for range out.Inputs {
			lo.Base.accumulate(covs[ci].(*CoverageOut))
			lo.Minp.accumulate(covs[ci+1].(*CoverageOut))
			ci += 2
		}
	}
	return out, nil
}

// accumulate folds one campaign result into the cell's distribution.
func (c *TechOut) accumulate(cov *CoverageOut) {
	if !cov.Ok {
		return
	}
	c.Coverage = append(c.Coverage, cov.Cov)
	c.Inputs++
	if cov.Cov < c.Expected-1e-9 {
		c.LossCount++
	}
}
