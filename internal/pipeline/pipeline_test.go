package pipeline

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/interp"
)

// testTask is a minimal in-memory task for scheduler tests.
type testTask struct {
	name string
	deps []Task
	runs *int32
	fn   func(rt *Runtime) (any, error)
}

func (t *testTask) Kind() string { return "test" }
func (t *testTask) Key() Key     { return NewHasher("test").Str(t.name).Sum() }
func (t *testTask) Deps() []Task { return t.deps }
func (t *testTask) Run(rt *Runtime) (any, error) {
	if t.runs != nil {
		atomic.AddInt32(t.runs, 1)
	}
	if t.fn != nil {
		return t.fn(rt)
	}
	return t.name, nil
}

// persistTask exercises the disk tier.
type persistTask struct {
	name string
	val  string
	runs *int32
}

func (t *persistTask) Kind() string { return "ptest" }
func (t *persistTask) Key() Key     { return NewHasher("ptest").Str(t.name).Sum() }
func (t *persistTask) Deps() []Task { return nil }
func (t *persistTask) Run(rt *Runtime) (any, error) {
	if t.runs != nil {
		atomic.AddInt32(t.runs, 1)
	}
	return t.val, nil
}
func (t *persistTask) Encode(v any) ([]byte, error) { return encodeArtifact(t.Kind(), v.(string)) }
func (t *persistTask) Decode(data []byte) (any, error) {
	var s string
	if err := decodeArtifact(t.Kind(), data, &s); err != nil {
		return nil, err
	}
	return s, nil
}

func TestSingleFlightDedup(t *testing.T) {
	p := NewMem(4)
	var runs int32
	task := &testTask{name: "a", runs: &runs}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Run(task)
			if err != nil || v.(string) != "a" {
				t.Errorf("Run = %v, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if runs != 1 {
		t.Fatalf("task ran %d times, want 1", runs)
	}
	// A distinct task value with the same key is served from the mem tier.
	if _, err := p.Run(&testTask{name: "a", runs: &runs}); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("task re-ran on equal key: %d runs", runs)
	}
	if s := p.Stats(); s.MemHits == 0 || s.Runs != 1 {
		t.Fatalf("stats = %+v, want >=1 mem hit and exactly 1 run", s)
	}
}

func TestDependencyResolution(t *testing.T) {
	p := NewMem(2)
	a := &testTask{name: "a"}
	b := &testTask{name: "b"}
	c := &testTask{name: "c", deps: []Task{a, b}, fn: func(rt *Runtime) (any, error) {
		return rt.Out(a).(string) + rt.Out(b).(string), nil
	}}
	v, err := p.Run(c)
	if err != nil || v.(string) != "ab" {
		t.Fatalf("Run = %v, %v, want ab", v, err)
	}
}

func TestDependencyErrorPropagates(t *testing.T) {
	p := NewMem(2)
	boom := errors.New("boom")
	bad := &testTask{name: "bad", fn: func(rt *Runtime) (any, error) { return nil, boom }}
	root := &testTask{name: "root", deps: []Task{bad}}
	if _, err := p.Run(root); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestAwaitNestedFanOutAtOneWorker(t *testing.T) {
	// A composite task that awaits subtasks which themselves await more
	// subtasks must not deadlock the single worker slot.
	p := NewMem(1)
	leafs := 0
	root := &testTask{name: "root", fn: func(rt *Runtime) (any, error) {
		var mids []Task
		for i := 0; i < 3; i++ {
			mid := i
			mids = append(mids, &testTask{name: fmt.Sprintf("mid%d", mid), fn: func(rt *Runtime) (any, error) {
				outs, err := rt.Await(&testTask{name: fmt.Sprintf("leaf%d", mid)})
				if err != nil {
					return nil, err
				}
				return outs[0], nil
			}})
		}
		outs, err := rt.Await(mids...)
		if err != nil {
			return nil, err
		}
		leafs = len(outs)
		return "done", nil
	}}
	if v, err := p.Run(root); err != nil || v.(string) != "done" {
		t.Fatalf("Run = %v, %v", v, err)
	}
	if leafs != 3 {
		t.Fatalf("awaited %d mids, want 3", leafs)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var runs int32
	task := &persistTask{name: "x", val: "payload", runs: &runs}

	p1, err := New(Options{Workers: 2, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p1.Run(task); err != nil || v.(string) != "payload" {
		t.Fatalf("cold Run = %v, %v", v, err)
	}
	if s := p1.Stats(); s.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want 1 disk write", s)
	}

	// A fresh pipeline on the same directory serves the artifact from disk.
	p2, err := New(Options{Workers: 2, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p2.Run(task); err != nil || v.(string) != "payload" {
		t.Fatalf("warm Run = %v, %v", v, err)
	}
	if runs != 1 {
		t.Fatalf("task ran %d times across pipelines, want 1", runs)
	}
	nodes := p2.Nodes()
	if len(nodes) != 1 || nodes[0].Source != SourceDisk {
		t.Fatalf("warm nodes = %+v, want one disk-sourced node", nodes)
	}
}

func TestDiskVersionMismatchDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	var runs int32
	task := &persistTask{name: "y", val: "v", runs: &runs}

	// Hand-plant an artifact from a different store version at this key.
	ds, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(envelope{V: StoreVersion + 999, Kind: task.Kind(), Data: []byte(`"old"`)})
	if err := ds.Put(task.Kind(), task.Key(), stale); err != nil {
		t.Fatal(err)
	}

	p, err := New(Options{Workers: 1, DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := p.Run(task); err != nil || v.(string) != "v" {
		t.Fatalf("Run = %v, %v", v, err)
	}
	if runs != 1 {
		t.Fatalf("stale artifact was trusted (runs=%d)", runs)
	}
	if s := p.Stats(); s.DiskErrors == 0 {
		t.Fatalf("stats = %+v, want a recorded disk error", s)
	}
	// The recompute overwrote the stale artifact.
	data, ok := ds.Get(task.Kind(), task.Key())
	if !ok {
		t.Fatal("artifact missing after recompute")
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.V != StoreVersion {
		t.Fatalf("artifact version = %d, %v; want %d", env.V, err, StoreVersion)
	}
}

func TestMemLRUEviction(t *testing.T) {
	lru := newMemLRU(2)
	k := func(s string) Key { return NewHasher("k").Str(s).Sum() }
	lru.add(k("a"), 1)
	lru.add(k("b"), 2)
	lru.add(k("c"), 3) // evicts a
	if _, ok := lru.get(k("a")); ok {
		t.Fatal("oldest entry not evicted")
	}
	if v, ok := lru.get(k("b")); !ok || v.(int) != 2 {
		t.Fatalf("get(b) = %v, %v", v, ok)
	}
	if lru.len() != 2 {
		t.Fatalf("len = %d, want 2", lru.len())
	}
}

func TestSummarize(t *testing.T) {
	nodes := []NodeMetric{
		{Kind: "measure", Source: SourceRun},
		{Kind: "campaign", Source: SourceRun},
		{Kind: "campaign", Source: SourceDisk},
		{Kind: "campaign", Source: SourceDisk},
	}
	s := Summarize(nodes)
	if s["campaign"][SourceDisk] != 2 || s["campaign"][SourceRun] != 1 || s["measure"][SourceRun] != 1 {
		t.Fatalf("Summarize = %v", s)
	}
	if Summarize(nil) != nil {
		t.Fatal("Summarize(nil) should be nil")
	}
}

func TestHasherDistinguishesComponents(t *testing.T) {
	// Length prefixes prevent concatenation collisions.
	a := NewHasher("k").Str("ab").Str("c").Sum()
	b := NewHasher("k").Str("a").Str("bc").Sum()
	if a == b {
		t.Fatal("string components collide by concatenation")
	}
	if NewHasher("k").Ints([]int{1, 2}).Sum() == NewHasher("k").Ints([]int{1}).I64(2).Sum() {
		t.Fatal("slice and scalar components collide")
	}
}

func TestWriteReportCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "r.json")
	store := StoreStats{Runs: 1}
	rep := &Report{Schema: ReportSchema, Tool: "t", Store: &store}
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Store == nil || back.Store.Runs != 1 {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestExecHashEngineInvariant pins the cache-sharing contract: the three
// engines are bit-identical (three-way differential suite), so ExecHash
// must not vary with cfg.Engine — campaign artifacts computed under one
// engine must be hits under any other. Semantically meaningful limits
// must still change the key.
func TestExecHashEngineInvariant(t *testing.T) {
	base := interp.Config{}
	for _, eng := range []interp.Engine{interp.EngineLegacy, interp.EngineImage, interp.EngineCompiled} {
		cfg := base
		cfg.Engine = eng
		if ExecHash(cfg) != ExecHash(base) {
			t.Fatalf("ExecHash varies with engine %v; artifacts would not be shared", eng)
		}
	}
	limited := base
	limited.MaxDynInstrs = 12345
	if ExecHash(limited) == ExecHash(base) {
		t.Fatal("ExecHash ignores MaxDynInstrs")
	}
}
