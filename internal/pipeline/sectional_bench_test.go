package pipeline

// BenchmarkIncremental measures the three cache regimes of the sectional
// tier end to end (incremental MeasureTask + CampaignTask against a disk
// store): cold (empty store, everything injects), edit (store warmed by
// the baseline build, then a single-function semantics-preserving edit —
// only the touched section re-runs), and warm (fully-populated store,
// nothing injects). `make bench` appends the three regimes to
// BENCH_incremental.json and CI gates edit and warm against the merge
// base with cmd/benchdiff, so a key-hygiene regression that silently
// turns edits back into cold runs shows up as a wall-clock cliff.

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/ir"
	"repro/internal/minpsid"
)

const benchFaultsPerInstr, benchTrials = 2, 150

// pickEditable returns the first benchmark offering a multi-section
// partition and a semantics-preserving pure-instruction swap (the same
// edit shape the cache-smoke test uses).
func pickEditable(tb testing.TB) (*benchprog.Benchmark, *ir.Module, *ir.Function, *ir.Block, int) {
	tb.Helper()
	for _, bench := range benchprog.All() {
		m := freshModule(tb, bench)
		fn, blk, idx := swapPure(m)
		if fn == nil || len(ir.PartitionSections(m).Sections) < 3 {
			continue
		}
		return bench, m, fn, blk, idx
	}
	tb.Fatal("no benchmark offers a multi-section edit site")
	return nil, nil, nil, nil, 0
}

// runIncrementalOnce executes one incremental measure + campaign pair
// over a disk store rooted at dir.
func runIncrementalOnce(tb testing.TB, bench *benchprog.Benchmark, m *ir.Module, dir string) {
	tb.Helper()
	p, err := New(Options{Workers: 4, DiskDir: dir})
	if err != nil {
		tb.Fatal(err)
	}
	env := newEnv()
	tgt := minpsid.Target{Mod: m, Spec: bench.Spec, Bind: bench.Bind, Exec: bench.ExecConfig()}
	mt := &MeasureTask{Target: tgt, Input: bench.Reference,
		FaultsPerInstr: benchFaultsPerInstr, Seed: 7, Incremental: true, Env: env}
	ct := &CampaignTask{Prot: identityProtect(m), Bind: bench.Bind(bench.Reference),
		Exec: bench.ExecConfig(), Trials: benchTrials, Seed: 5, Incremental: true, Env: env}
	if _, err := p.Run(mt); err != nil {
		tb.Fatal(err)
	}
	if _, err := p.Run(ct); err != nil {
		tb.Fatal(err)
	}
}

// copyDir clones a disk store so each timed iteration starts from an
// identical cache state without re-warming.
func copyDir(tb testing.TB, src, dst string) {
	tb.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	})
	if err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkIncremental(b *testing.B) {
	bench, m, fn, blk, idx := pickEditable(b)

	// Edited build: swap the two adjacent independent pure instructions.
	m2 := freshModule(b, bench)
	b2 := m2.Funcs[fn.Index].Blocks[blk.Index]
	b2.Instrs[idx], b2.Instrs[idx+1] = b2.Instrs[idx+1], b2.Instrs[idx]
	m2.Finalize()
	if err := ir.Verify(m2); err != nil {
		b.Fatal(err)
	}

	// Warm reference store, populated once from the baseline build.
	warmDir := b.TempDir()
	runIncrementalOnce(b, bench, m, warmDir)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(b.TempDir(), "store")
			b.StartTimer()
			runIncrementalOnce(b, bench, m, dir)
		}
	})
	b.Run("edit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(b.TempDir(), "store")
			copyDir(b, warmDir, dir)
			b.StartTimer()
			runIncrementalOnce(b, bench, m2, dir)
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := filepath.Join(b.TempDir(), "store")
			copyDir(b, warmDir, dir)
			b.StartTimer()
			runIncrementalOnce(b, bench, m, dir)
		}
	})
}
