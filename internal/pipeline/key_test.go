package pipeline

import "testing"

// keyOf builds a key from a sequence of component applications.
func keyOf(parts ...func(*Hasher) *Hasher) Key {
	h := NewHasher("t")
	for _, p := range parts {
		p(h)
	}
	return h.Sum()
}

func str(s string) func(*Hasher) *Hasher      { return func(h *Hasher) *Hasher { return h.Str(s) } }
func strs(v ...string) func(*Hasher) *Hasher  { return func(h *Hasher) *Hasher { return h.Strs(v) } }
func ints(v ...int) func(*Hasher) *Hasher     { return func(h *Hasher) *Hasher { return h.Ints(v) } }
func i64(v int64) func(*Hasher) *Hasher       { return func(h *Hasher) *Hasher { return h.I64(v) } }
func f64s(v ...float64) func(*Hasher) *Hasher { return func(h *Hasher) *Hasher { return h.F64s(v) } }

// TestHasherPrefixUnambiguity pins the anti-collision property the
// sectional keys lean on: every component is tagged and length-prefixed,
// so no sequence of components can be re-bracketed into a different
// sequence with the same digest. Each case lists two component sequences
// whose naive byte concatenations would collide; the Hasher must keep
// them distinct.
func TestHasherPrefixUnambiguity(t *testing.T) {
	cases := []struct {
		name string
		a, b []func(*Hasher) *Hasher
	}{
		{"str split",
			[]func(*Hasher) *Hasher{str("ab"), str("c")},
			[]func(*Hasher) *Hasher{str("a"), str("bc")}},
		{"str merge",
			[]func(*Hasher) *Hasher{str("abc")},
			[]func(*Hasher) *Hasher{str("ab"), str("c")}},
		{"empty str not identity",
			[]func(*Hasher) *Hasher{str("x")},
			[]func(*Hasher) *Hasher{str(""), str("x")}},
		{"strs vs flat strs",
			[]func(*Hasher) *Hasher{strs("a", "b")},
			[]func(*Hasher) *Hasher{str("a"), str("b")}},
		{"strs rebracketed",
			[]func(*Hasher) *Hasher{strs("a"), strs("b")},
			[]func(*Hasher) *Hasher{strs("a", "b")}},
		{"empty strs placement",
			[]func(*Hasher) *Hasher{strs(), str("x")},
			[]func(*Hasher) *Hasher{str("x"), strs()}},
		{"ints vs flat i64",
			[]func(*Hasher) *Hasher{ints(1, 2)},
			[]func(*Hasher) *Hasher{i64(1), i64(2)}},
		{"ints rebracketed",
			[]func(*Hasher) *Hasher{ints(1), ints(2)},
			[]func(*Hasher) *Hasher{ints(1, 2)}},
		{"empty ints placement",
			[]func(*Hasher) *Hasher{ints(), i64(7)},
			[]func(*Hasher) *Hasher{i64(7), ints()}},
		{"strs vs ints of same shape",
			[]func(*Hasher) *Hasher{strs("a")},
			[]func(*Hasher) *Hasher{ints(int('a'))}},
		{"str vs i64 length confusion",
			[]func(*Hasher) *Hasher{str("\x01\x00\x00\x00\x00\x00\x00\x00")},
			[]func(*Hasher) *Hasher{i64(1)}},
		{"f64s vs ints",
			[]func(*Hasher) *Hasher{f64s(0)},
			[]func(*Hasher) *Hasher{ints(0)}},
		{"interleaving order",
			[]func(*Hasher) *Hasher{str("a"), ints(1), str("b")},
			[]func(*Hasher) *Hasher{str("b"), ints(1), str("a")}},
	}
	for _, c := range cases {
		if keyOf(c.a...) == keyOf(c.b...) {
			t.Errorf("%s: distinct component sequences collided", c.name)
		}
	}
	// Determinism: the same sequence keys identically.
	if keyOf(str("a"), ints(1, 2), strs("x")) != keyOf(str("a"), ints(1, 2), strs("x")) {
		t.Error("identical component sequences produced different keys")
	}
}

// TestIncrementalFlagExtendsKeys pins that the -incremental flag is a
// distinct artifact universe (it changes RNG stream structure) and that
// leaving it off keys exactly as a task with no knowledge of the flag —
// the zero value adds nothing, so every pre-existing default key is
// byte-identical.
func TestIncrementalFlagExtendsKeys(t *testing.T) {
	mt := tinyEval(Env{}).Measure()
	base := mt.Key()
	mt.Incremental = true
	if mt.Key() == base {
		t.Error("MeasureTask.Incremental did not extend the key")
	}
	ev := tinyEval(Env{})
	evBase := ev.Key()
	ev.Incremental = true
	if ev.Key() == evBase {
		t.Error("EvalTask.Incremental did not extend the key")
	}
}
