package pipeline

// Determinism guard for the task graph: the scheduler, worker count, and
// store state (memory-only, disk-cold, disk-warm, cache-disabled Env) are
// observational — every configuration must produce bit-identical
// evaluation results. A warm disk store must additionally satisfy the
// resumability guarantee: no fault campaign re-executes.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/benchprog"
	"repro/internal/fault"
	"repro/internal/minpsid"
)

// tinyEval builds a small but complete evaluation task (pathfinder,
// reduced budgets) on the given environment.
func tinyEval(env Env) *EvalTask {
	b, ok := benchprog.ByName("pathfinder")
	if !ok {
		panic("pathfinder benchmark missing")
	}
	return &EvalTask{
		Target: minpsid.Target{
			Mod:  b.MustModule(),
			Spec: b.Spec,
			Bind: b.Bind,
			Exec: b.ExecConfig(),
		},
		Ref:            b.Reference,
		Levels:         []float64{0.3, 0.7},
		EvalInputs:     3,
		Trials:         60,
		FaultsPerInstr: 5,
		Seed:           1,
		SearchCfg: minpsid.Config{
			FaultsPerInstr: 5,
			MaxInputs:      2,
			Patience:       1,
			PopSize:        3,
			MaxGenerations: 1,
			Seed:           18,
		},
		Env: env,
	}
}

// fingerprint flattens every result-bearing field of an evaluation; %v on
// float64 prints the shortest exact representation, so equal fingerprints
// mean bit-identical values.
func fingerprint(out *EvalOut) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "incubative=%v\nsearchInputs=%d\nevalInputs=%v\n",
		out.Search.Incubative, len(out.Search.Inputs), out.Inputs)
	for _, lo := range out.Levels {
		fmt.Fprintf(&sb, "level=%v\n", lo.Level)
		for _, c := range []TechOut{lo.Base, lo.Minp} {
			fmt.Fprintf(&sb, "  chosen=%v expected=%v cov=%v loss=%d inputs=%d\n",
				c.Sel.Chosen, c.Expected, c.Coverage, c.LossCount, c.Inputs)
		}
	}
	return sb.String()
}

func runTinyEval(t *testing.T, p *Pipeline, env Env) string {
	t.Helper()
	v, err := p.Run(tinyEval(env))
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return fingerprint(v.(*EvalOut))
}

// newEnv returns a fresh observational environment (its cache must not be
// shared across pipelines in these tests, so hits cannot leak results).
func newEnv() Env {
	return Env{Cache: fault.NewCache(0), Metrics: fault.NewMetrics()}
}

func TestEvalInvariantAcrossWorkersAndStores(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation invariance is slow")
	}
	want := runTinyEval(t, NewMem(1), newEnv())

	t.Run("workers8", func(t *testing.T) {
		if got := runTinyEval(t, NewMem(8), newEnv()); got != want {
			t.Errorf("worker count changed results:\n--- w1\n%s--- w8\n%s", want, got)
		}
	})
	t.Run("noCampaignCache", func(t *testing.T) {
		// A nil fault.Cache disables golden/campaign memoization entirely.
		if got := runTinyEval(t, NewMem(2), Env{}); got != want {
			t.Errorf("disabling the campaign cache changed results:\n--- cached\n%s--- uncached\n%s", want, got)
		}
	})

	dir := t.TempDir()
	t.Run("diskCold", func(t *testing.T) {
		p, err := New(Options{Workers: 4, DiskDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := runTinyEval(t, p, newEnv()); got != want {
			t.Errorf("cold disk store changed results:\n--- mem\n%s--- disk\n%s", want, got)
		}
	})
	t.Run("diskWarm", func(t *testing.T) {
		p, err := New(Options{Workers: 4, DiskDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := runTinyEval(t, p, newEnv()); got != want {
			t.Errorf("warm disk store changed results:\n--- mem\n%s--- warm\n%s", want, got)
		}
		// Resumability: nothing fault-injecting re-ran. Only composite or
		// non-persisted nodes (eval, protect) may execute on a warm store.
		for _, n := range p.Nodes() {
			if n.Source != SourceRun {
				continue
			}
			switch n.Kind {
			case "measure", "search", "campaign", "inputs":
				t.Errorf("warm rerun executed %s %s", n.Kind, n.Key)
			}
		}
		if s := p.Stats(); s.DiskHits == 0 {
			t.Errorf("warm rerun hit the disk store 0 times: %+v", s)
		}
	})
}
